"""Explicit state-transition-graph extraction from gate-level circuits.

The paper's Section II definitions (state equivalence, space/time
containment, functional synchronizing sequences) are all properties of the
state transition graph.  For circuits with a modest number of flip-flops
(the paper's examples have 1-3, the synthesized benchmarks 5-7) the STG can
be built exactly by enumerating all binary states and input vectors.

Three engine tiers build compatible tables:

* ``engine="bitset"`` (default) packs all ``2^r`` initial states as lanes
  of the compiled bit-parallel stepper and advances the whole state space
  with **one vectorized step per input vector**
  (:mod:`repro.equivalence.bitset`);
* ``engine="reference"`` runs one scalar
  :class:`~repro.simulation.sequential.SequentialSimulator` step per
  (state, vector) pair -- the obviously-correct engine the bitset engine is
  cross-checked against;
* ``engine="reach"`` (:mod:`repro.equivalence.reach`) BFS-expands only the
  states reachable from a reset/initial set, after a cone-of-influence
  reduction -- reachability-bounded semantics, but it breaks the
  exhaustive tiers' register wall on sparse machines;
* ``engine="auto"`` picks the cheapest exhaustive tier that fits, falling
  back to ``reach`` beyond the bitset limits (:func:`select_engine`).

Either way the machine is stored as **flat integer tables** indexed
``[vector_idx][state_idx]``: ``next_index`` holds successor state indices,
``output_index`` holds output vectors packed MSB-first into ints.  The
:class:`ExplicitSTG` facade keeps the historical dict-style ``next_state``
/ ``output`` mappings as lazy views, and exposes the index/bitset API the
classification and sync-sequence searches run on.

Faulty machines are first-class: pass a fault (or a sequence of faults, for
multiple-fault machines) to :func:`extract_stg` to get the STG of the
faulty circuit ``K^f``.  Extracted tables are memoized in the
content-addressed artifact store (kind ``stg``) keyed by circuit digest,
fault coordinates and alphabet; ``use_store=False`` or
``REPRO_STORE_DISABLE=1`` bypasses the store.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.circuit.netlist import Circuit
from repro.equivalence import bitset as _bitset
from repro.faults.model import StuckAtFault
from repro.simulation.sequential import SequentialSimulator

State = Tuple[int, ...]
Vector = Tuple[int, ...]

#: Bump when the ``stg`` artifact payload layout or table semantics change;
#: folded into :func:`repro.store.core.schema_version`.
STG_FORMAT_VERSION = 1

DEFAULT_ENGINE = "bitset"


@dataclass(frozen=True)
class EngineLimits:
    """Largest machine one extraction engine will enumerate."""

    registers: int
    inputs: int
    transitions: Optional[int]  # cap on 2^r * |alphabet|; None = unchecked


#: Measured on the benchmark sweep (see ``BENCH_equiv.json``): the bitset
#: engine sustains 2^18-state sweeps in seconds where the scalar reference
#: engine is already minutes at 2^12.  The reference engine keeps its
#: historical caps so ``engine="reference"`` behaves exactly like the seed.
#: The reach tier enumerates visited states only, so its register cap is a
#: cone-of-influence cap and its transition cap (``visited x |alphabet|``)
#: is enforced *during* traversal rather than up front.
ENGINE_LIMITS: Dict[str, EngineLimits] = {
    "bitset": EngineLimits(registers=18, inputs=12, transitions=1 << 22),
    "reference": EngineLimits(registers=16, inputs=10, transitions=None),
    "reach": EngineLimits(registers=30, inputs=12, transitions=1 << 24),
}

#: Engine tiers from cheapest-per-state to largest-capacity; the order the
#: limits table prints in and the escalation order of the too-large hints.
ENGINE_TIERS: Tuple[str, ...] = ("reference", "bitset", "reach")

_DEPRECATED_LIMIT_ALIASES = {
    "MAX_EXPLICIT_REGISTERS": "registers",
    "MAX_EXPLICIT_INPUTS": "inputs",
}


def __getattr__(name: str):
    """PEP 562 shim for the pre-``ENGINE_LIMITS`` module constants."""
    field_name = _DEPRECATED_LIMIT_ALIASES.get(name)
    if field_name is not None:
        import warnings

        warnings.warn(
            f"{name} is deprecated; read "
            f"ENGINE_LIMITS[engine].{field_name} instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return getattr(ENGINE_LIMITS[DEFAULT_ENGINE], field_name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


class StateSpaceTooLarge(ValueError):
    """Raised when explicit enumeration would be intractable."""


def engine_limits_table() -> str:
    """The per-tier limits, one aligned row per engine.

    Shared by the ``StateSpaceTooLarge`` escalation hints and the
    ``python -m repro equiv --help`` output.
    """
    lines = [f"{'engine':<10} {'registers':>9} {'inputs':>6}  transition cap"]
    for name in ENGINE_TIERS:
        limits = ENGINE_LIMITS[name]
        if limits.transitions is None:
            cap = "unchecked"
        else:
            cap = f"2^{limits.transitions.bit_length() - 1}"
        if name == "reach":
            cap += " (visited x |alphabet|, checked during traversal)"
        lines.append(f"{name:<10} {limits.registers:>9} {limits.inputs:>6}  {cap}")
    return "\n".join(lines)


def _next_tier_hint(engine: str) -> str:
    """What to try after ``engine`` rejected the machine."""
    try:
        position = ENGINE_TIERS.index(engine)
    except ValueError:
        position = len(ENGINE_TIERS) - 1
    if position + 1 >= len(ENGINE_TIERS):
        return "no larger engine tier exists"
    next_engine = ENGINE_TIERS[position + 1]
    limits = ENGINE_LIMITS[next_engine]
    hint = (
        f"try engine={next_engine!r} "
        f"(up to {limits.registers} registers / {limits.inputs} inputs"
    )
    if next_engine == "reach":
        hint += (
            f", visited x |alphabet| capped at {limits.transitions}; "
            "reachability-bounded semantics"
        )
    elif limits.transitions is not None:
        hint += f", {limits.transitions} transitions"
    return hint + ")"


def select_engine(
    circuit: Circuit, alphabet: Optional[Sequence[Vector]] = None
) -> str:
    """The ``engine="auto"`` policy: cheapest tier that fits the machine.

    Prefers the exhaustive ``bitset`` tier (exact full-state-space
    semantics) whenever its register/input/transition limits all fit;
    escalates to the reachability-bounded ``reach`` tier otherwise.
    Raises :class:`StateSpaceTooLarge` (with the full limits table) when
    no tier accepts the machine.
    """
    num_registers = circuit.num_registers()
    num_inputs = len(circuit.input_names)
    num_vectors = (1 << num_inputs) if alphabet is None else len(alphabet)
    bitset_limits = ENGINE_LIMITS["bitset"]
    if (
        num_registers <= bitset_limits.registers
        and (alphabet is not None or num_inputs <= bitset_limits.inputs)
        and (
            bitset_limits.transitions is None
            or (1 << num_registers) * num_vectors <= bitset_limits.transitions
        )
    ):
        return "bitset"
    reach_limits = ENGINE_LIMITS["reach"]
    if num_registers <= reach_limits.registers and (
        alphabet is not None or num_inputs <= reach_limits.inputs
    ):
        return "reach"
    raise StateSpaceTooLarge(
        f"{circuit.name}: {num_registers} flip-flops / {num_inputs} inputs "
        f"exceeds every engine tier:\n{engine_limits_table()}"
    )


def resolved_engine_name(engine: Optional[str], *stgs: "ExplicitSTG") -> str:
    """The engine name(s) that actually produced ``stgs``.

    Callers that pass ``engine=None`` or ``"auto"`` to :func:`extract_stg`
    use this to report which tier ran: a :class:`~repro.equivalence.reach.
    ReachableSTG` came from ``reach``, anything else from the requested
    engine (or the package default).  Mixed pairs -- e.g. ``auto`` picking
    ``bitset`` for a small machine and ``reach`` for its large retiming --
    join the names with ``+``.
    """
    from repro.equivalence.reach import ReachableSTG

    names = []
    for stg in stgs:
        if isinstance(stg, ReachableSTG):
            names.append("reach")
        elif engine in (None, "auto"):
            names.append(DEFAULT_ENGINE)
        else:
            names.append(engine)
    return "+".join(sorted(set(names)))


def _require_engine(engine: Optional[str]) -> str:
    engine = DEFAULT_ENGINE if engine is None else engine
    if engine != "auto" and engine not in ENGINE_LIMITS:
        raise ValueError(
            f"unknown STG engine {engine!r} (choose from auto, "
            f"{', '.join(sorted(ENGINE_LIMITS))})"
        )
    return engine


def _pack_bits(bits: Sequence[int]) -> int:
    packed = 0
    for bit in bits:
        if bit not in (0, 1):
            raise ValueError(
                f"STG tables require binary values, got {bit!r} in {tuple(bits)}"
            )
        packed = packed << 1 | bit
    return packed


def _unpack_bits(packed: int, width: int) -> Tuple[int, ...]:
    return tuple((packed >> (width - 1 - position)) & 1 for position in range(width))


class _TableView(Mapping):
    """Read-only dict-compatible view over one flat (vector, state) table."""

    __slots__ = ("_stg", "_lookup")

    def __init__(self, stg: "ExplicitSTG", lookup) -> None:
        self._stg = stg
        self._lookup = lookup

    def __getitem__(self, key):
        state, vector = key
        stg = self._stg
        try:
            state_idx = stg._state_index[tuple(state)]
            vector_idx = stg._vector_index[tuple(vector)]
        except KeyError:
            raise KeyError(key) from None
        return self._lookup(stg, vector_idx, state_idx)

    def __iter__(self):
        for state in self._stg.states:
            for vector in self._stg.alphabet:
                yield (state, vector)

    def __len__(self) -> int:
        return len(self._stg.states) * len(self._stg.alphabet)


def _next_lookup(stg: "ExplicitSTG", vector_idx: int, state_idx: int) -> State:
    return stg.states[stg.next_index[vector_idx][state_idx]]

def _output_lookup(
    stg: "ExplicitSTG", vector_idx: int, state_idx: int
) -> Tuple[int, ...]:
    return stg.output_tuple(stg.output_index[vector_idx][state_idx])


class ExplicitSTG:
    """A fully enumerated Mealy machine over flat transition tables.

    State ``states[s]`` and vector ``alphabet[v]`` meet at table slot
    ``[v][s]``: ``next_index[v][s]`` is the successor *state index*,
    ``output_index[v][s]`` the output vector packed MSB-first into an int.
    The historical dict-style constructor (``next_state``/``output`` keyed
    by ``(state, vector)``) still works and is converted to tables.

    State *sets* travel as Python-int bitsets (bit ``s`` <=> ``states[s]``)
    through :meth:`bitset_of_states` / :meth:`states_of_bitset` /
    :meth:`image_bitset`; set images are memoized per ``(vector_idx,
    bitset)``.  Per-vector successor-state tuples are cached so the
    frozenset-facing API (:meth:`successors`, :meth:`step_set`) stops
    re-hashing ``(state, vector)`` pair keys.
    """

    __slots__ = (
        "name",
        "num_inputs",
        "num_registers",
        "num_outputs",
        "alphabet",
        "states",
        "next_index",
        "output_index",
        "_state_index",
        "_vector_index",
        "_successor_states",
        "_output_tuples",
        "_image_memo",
        "_image_hits",
        "_image_misses",
    )

    def __init__(
        self,
        name: str,
        num_inputs: int,
        num_registers: int,
        alphabet: Sequence[Vector],
        states: Sequence[State],
        next_state: Optional[Mapping[Tuple[State, Vector], State]] = None,
        output: Optional[Mapping[Tuple[State, Vector], Tuple[int, ...]]] = None,
        *,
        num_outputs: Optional[int] = None,
        next_index: Optional[Sequence[Sequence[int]]] = None,
        output_index: Optional[Sequence[Sequence[int]]] = None,
    ) -> None:
        self.name = name
        self.num_inputs = num_inputs
        self.num_registers = num_registers
        self.alphabet: Tuple[Vector, ...] = tuple(tuple(v) for v in alphabet)
        self.states: Tuple[State, ...] = tuple(tuple(s) for s in states)
        self._state_index: Dict[State, int] = {
            state: index for index, state in enumerate(self.states)
        }
        self._vector_index: Dict[Vector, int] = {
            vector: index for index, vector in enumerate(self.alphabet)
        }
        if next_index is None or output_index is None:
            if next_state is None or output is None:
                raise TypeError(
                    "ExplicitSTG needs either (next_state, output) mappings "
                    "or (next_index, output_index) tables"
                )
            next_index, output_index, inferred = self._tables_from_dicts(
                next_state, output
            )
            if num_outputs is None:
                num_outputs = inferred
        if num_outputs is None:
            raise TypeError("num_outputs is required with table construction")
        self.num_outputs = num_outputs
        self.next_index: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(row) for row in next_index
        )
        self.output_index: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(row) for row in output_index
        )
        self._successor_states: List[Optional[Tuple[State, ...]]] = [None] * len(
            self.alphabet
        )
        self._output_tuples: Dict[int, Tuple[int, ...]] = {}
        self._image_memo: Dict[Tuple[int, int], int] = {}
        self._image_hits = 0
        self._image_misses = 0

    def _tables_from_dicts(self, next_state, output):
        num_outputs = 0
        for value in output.values():
            num_outputs = len(value)
            break
        next_rows: List[Tuple[int, ...]] = []
        output_rows: List[Tuple[int, ...]] = []
        state_index = self._state_index
        for vector in self.alphabet:
            next_rows.append(
                tuple(
                    state_index[tuple(next_state[(state, vector)])]
                    for state in self.states
                )
            )
            output_rows.append(
                tuple(_pack_bits(output[(state, vector)]) for state in self.states)
            )
        return tuple(next_rows), tuple(output_rows), num_outputs

    def __repr__(self) -> str:
        return (
            f"ExplicitSTG({self.name!r}, states={len(self.states)}, "
            f"vectors={len(self.alphabet)})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ExplicitSTG):
            return NotImplemented
        return (
            self.name == other.name
            and self.num_inputs == other.num_inputs
            and self.num_registers == other.num_registers
            and self.num_outputs == other.num_outputs
            and self.alphabet == other.alphabet
            and self.states == other.states
            and self.next_index == other.next_index
            and self.output_index == other.output_index
        )

    __hash__ = None  # mutable caches inside; identity-free hashing is a trap

    # -- dict-compatible views ---------------------------------------------

    @property
    def next_state(self) -> Mapping[Tuple[State, Vector], State]:
        """``(state, vector) -> successor state`` view over the tables."""
        return _TableView(self, _next_lookup)

    @property
    def output(self) -> Mapping[Tuple[State, Vector], Tuple[int, ...]]:
        """``(state, vector) -> output tuple`` view over the tables."""
        return _TableView(self, _output_lookup)

    # -- index arithmetic ---------------------------------------------------

    def index_of_state(self, state: State) -> int:
        return self._state_index[tuple(state)]

    def index_of_vector(self, vector: Vector) -> int:
        return self._vector_index[tuple(vector)]

    def output_tuple(self, packed: int) -> Tuple[int, ...]:
        """Unpack one ``output_index`` entry into the historical tuple form."""
        cached = self._output_tuples.get(packed)
        if cached is None:
            cached = _unpack_bits(packed, self.num_outputs)
            self._output_tuples[packed] = cached
        return cached

    def successor_table(self, vector_index: int) -> Tuple[State, ...]:
        """``state_idx -> successor State`` for one vector, built once."""
        table = self._successor_states[vector_index]
        if table is None:
            states = self.states
            table = tuple(states[i] for i in self.next_index[vector_index])
            self._successor_states[vector_index] = table
        return table

    # -- bitset state sets --------------------------------------------------

    @property
    def full_bitset(self) -> int:
        """The set of all states, as a bitset."""
        return (1 << len(self.states)) - 1

    def bitset_of_states(self, states: Iterable[State]) -> int:
        index = self._state_index
        return _bitset.bitset_from_indices(index[tuple(s)] for s in states)

    def states_of_bitset(self, bits: int) -> FrozenSet[State]:
        states = self.states
        return frozenset(
            states[i] for i in _bitset.iter_bit_indices(bits, len(states))
        )

    def iter_bitset_indices(self, bits: int) -> Iterator[int]:
        return _bitset.iter_bit_indices(bits, len(self.states))

    def image_bitset(self, bits: int, vector_index: int) -> int:
        """Image of the state set ``bits`` under ``alphabet[vector_index]``,
        memoized per ``(vector_index, bits)``."""
        key = (vector_index, bits)
        memo = self._image_memo
        cached = memo.get(key)
        if cached is not None:
            self._image_hits += 1
            return cached
        self._image_misses += 1
        result = _bitset.image_bitset(
            self.next_index[vector_index], bits, len(self.states)
        )
        memo[key] = result
        return result

    def step_all_bitset(self, bits: int) -> int:
        """Union of the images of ``bits`` under every alphabet vector."""
        result = 0
        for vector_index in range(len(self.alphabet)):
            result |= self.image_bitset(bits, vector_index)
        return result

    def states_after_bitset(self, steps: int) -> int:
        bits = self.full_bitset
        for _ in range(steps):
            bits = self.step_all_bitset(bits)
        return bits

    def image_cache_stats(self) -> Dict[str, int]:
        return {
            "hits": self._image_hits,
            "misses": self._image_misses,
            "entries": len(self._image_memo),
        }

    # -- historical frozenset/tuple API ------------------------------------

    def successors(self, state: State) -> List[State]:
        state_idx = self._state_index[state]
        return [
            self.successor_table(vector_index)[state_idx]
            for vector_index in range(len(self.alphabet))
        ]

    def step_set(self, states: Iterable[State], vector: Vector) -> FrozenSet[State]:
        """Image of a state set under one input vector."""
        table = self.successor_table(self._vector_index[tuple(vector)])
        index = self._state_index
        return frozenset(table[index[state]] for state in states)

    def run(
        self, state: State, vectors: Sequence[Vector]
    ) -> Tuple[State, List[Tuple[int, ...]]]:
        """Final state and per-cycle outputs from ``state`` under ``vectors``."""
        outputs = []
        current = self._state_index[tuple(state)]
        for vector in vectors:
            vector_index = self._vector_index[tuple(vector)]
            outputs.append(self.output_tuple(self.output_index[vector_index][current]))
            current = self.next_index[vector_index][current]
        return self.states[current], outputs

    def states_after(self, steps: int) -> FrozenSet[State]:
        """``K_i``: states reachable from *any* state after ``i`` transitions."""
        return self.states_of_bitset(self.states_after_bitset(steps))

    def reachable_from(self, start: State) -> FrozenSet[State]:
        """All states reachable from ``start`` (the paper's *valid states*
        when ``start`` is a reset state)."""
        seen = 1 << self._state_index[start]
        frontier = seen
        while frontier:
            frontier = self.step_all_bitset(frontier) & ~seen
            seen |= frontier
        return self.states_of_bitset(seen)


def all_vectors(width: int) -> List[Vector]:
    """All binary vectors of ``width`` bits, lexicographic."""
    return [tuple(bits) for bits in itertools.product((0, 1), repeat=width)]


FaultSpec = Union[StuckAtFault, Sequence[StuckAtFault], None]


def _normalize_faults(fault: FaultSpec) -> Tuple[StuckAtFault, ...]:
    if fault is None:
        return ()
    if isinstance(fault, (list, tuple)):
        return tuple(fault)
    return (fault,)


def _check_limits(
    circuit: Circuit,
    engine: str,
    num_registers: int,
    num_vectors: Optional[int],
) -> None:
    limits = ENGINE_LIMITS[engine]
    # The reach tier checks its register cap against the cone-reduced
    # machine (repro.equivalence.reach) and its transition cap against the
    # states actually visited, so only the alphabet cost is knowable here.
    if engine != "reach" and num_registers > limits.registers:
        raise StateSpaceTooLarge(
            f"{circuit.name}: {num_registers} flip-flops is too many for the "
            f"{engine} engine (limit {limits.registers}; enumerating would "
            f"cost 2^{num_registers} = {1 << num_registers} states); "
            f"{_next_tier_hint(engine)}"
        )
    if num_vectors is None:
        num_inputs = len(circuit.input_names)
        if num_inputs > limits.inputs:
            raise StateSpaceTooLarge(
                f"{circuit.name}: {num_inputs} inputs is too many for the "
                f"{engine} engine's full alphabet (limit {limits.inputs}; "
                f"enumerating would cost 2^{num_inputs} = {1 << num_inputs} "
                f"vectors per state); {_next_tier_hint(engine)}"
            )
        num_vectors = 1 << num_inputs
    if engine == "reach":
        return
    transitions = (1 << num_registers) * num_vectors
    if limits.transitions is not None and transitions > limits.transitions:
        raise StateSpaceTooLarge(
            f"{circuit.name}: the {engine} engine caps enumeration at "
            f"{limits.transitions} transitions; this machine costs "
            f"{1 << num_registers} states x {num_vectors} vectors = "
            f"{transitions} transitions; {_next_tier_hint(engine)}"
        )


def _extract_arrays_reference(
    circuit: Circuit,
    faults: Sequence[StuckAtFault],
    alphabet: Sequence[Vector],
    states: Sequence[State],
) -> Tuple[Tuple[Tuple[int, ...], ...], Tuple[Tuple[int, ...], ...]]:
    """One scalar simulation per (state, vector) pair -- the seed algorithm."""
    simulator = SequentialSimulator(circuit, fault=list(faults) if faults else None)
    state_index = {tuple(state): index for index, state in enumerate(states)}
    next_rows: List[Tuple[int, ...]] = []
    output_rows: List[Tuple[int, ...]] = []
    for vector in alphabet:
        next_row: List[int] = []
        output_row: List[int] = []
        for state in states:
            result = simulator.step(state, vector)
            next_row.append(state_index[result.next_state])
            output_row.append(_pack_bits(result.outputs))
        next_rows.append(tuple(next_row))
        output_rows.append(tuple(output_row))
    return tuple(next_rows), tuple(output_rows)


#: Records larger than this many (state, vector) table entries are computed
#: but not persisted: a 2^18-state x 4-vector table would be a multi-MB
#: JSON document, slower to decode than to recompute with the bitset engine.
_STORE_MAX_ENTRIES = 1 << 16


def _stg_store_key(store, circuit: Circuit, faults, alphabet) -> str:
    from repro.circuit.digest import circuit_digest
    from repro.store.artifacts import encode_faults

    return store.key(
        "stg",
        circuit_digest(circuit),
        encode_faults(faults),
        [list(map(int, vector)) for vector in alphabet],
    )


def extract_stg(
    circuit: Circuit,
    fault: FaultSpec = None,
    alphabet: Optional[Sequence[Vector]] = None,
    engine: Optional[str] = None,
    use_store: bool = True,
    backend: str = "auto",
    initial_states=None,
) -> ExplicitSTG:
    """Enumerate the (possibly faulty) machine's STG.

    Args:
        circuit: the machine to enumerate.
        fault: one :class:`~repro.faults.model.StuckAtFault`, a sequence of
            them (a multiple-fault machine), or ``None`` for fault-free.
        alphabet: input vectors to enumerate (default: the full binary
            alphabet over the circuit's inputs).
        engine: ``"bitset"`` (lane-parallel, default) or ``"reference"``
            (scalar simulation), which produce identical full-space
            tables; ``"reach"`` for reachability-bounded traversal
            (:mod:`repro.equivalence.reach`); or ``"auto"`` to pick by
            machine size (:func:`select_engine`).
        use_store: memoize the tables in the content-addressed artifact
            store (skipped automatically for oversized machines and when
            the store is disabled).
        backend: word implementation for the lane-parallel engines
            (``"bigint"``, ``"numpy"``, or ``"auto"``); tables are
            identical either way, so the store key deliberately ignores
            it.
        initial_states: reach engine only -- ``None``/``"reset"`` (the
            all-zero state), ``"all"`` (full state space, bit-identical to
            the bitset engine's tables), or an iterable of register-state
            tuples to seed the traversal from.

    Raises :class:`StateSpaceTooLarge` when the machine exceeds the chosen
    engine's limits (:data:`ENGINE_LIMITS`); the message names the engine,
    the limit, the estimated enumeration cost and the next tier to try.
    """
    engine = _require_engine(engine)
    faults = _normalize_faults(fault)
    num_registers = circuit.num_registers()
    if alphabet is not None:
        alphabet = tuple(tuple(v) for v in alphabet)
        for vector in alphabet:
            if any(bit not in (0, 1) for bit in vector):
                raise ValueError(
                    f"{circuit.name}: STG extraction needs a binary alphabet, "
                    f"got vector {vector!r}"
                )
    if engine == "auto":
        engine = select_engine(circuit, alphabet)
    if initial_states is not None and engine != "reach":
        raise ValueError(
            f"initial_states is only meaningful for engine='reach' "
            f"(got engine={engine!r}); the exhaustive engines always "
            "enumerate the full state space"
        )
    _check_limits(
        circuit, engine, num_registers, None if alphabet is None else len(alphabet)
    )
    if alphabet is None:
        alphabet = tuple(all_vectors(len(circuit.input_names)))
    if engine == "reach":
        from repro.equivalence.reach import extract_stg_reach

        return extract_stg_reach(
            circuit,
            faults,
            alphabet,
            use_store=use_store,
            backend=backend,
            initial_states=initial_states,
        )

    states = tuple(all_vectors(num_registers))
    num_outputs = len(circuit.output_names)
    if faults:
        suffix = "^" + "+".join(f.describe(circuit) for f in faults)
    else:
        suffix = ""
    name = circuit.name + suffix

    store = None
    key = None
    persistable = len(states) * len(alphabet) <= _STORE_MAX_ENTRIES
    if use_store and persistable:
        from repro.store.core import default_store

        store = default_store()
    if store is not None:
        from repro.store.artifacts import stg_arrays_from_payload

        key = _stg_store_key(store, circuit, faults, alphabet)
        payload = store.get("stg", key)
        if payload is not None:
            tables = stg_arrays_from_payload(payload, circuit, faults, alphabet)
            if tables is not None:
                return ExplicitSTG(
                    name=name,
                    num_inputs=len(circuit.input_names),
                    num_registers=num_registers,
                    alphabet=alphabet,
                    states=states,
                    num_outputs=tables[0],
                    next_index=tables[1],
                    output_index=tables[2],
                )

    if engine == "bitset":
        next_index, output_index = _bitset.extract_arrays_bitset(
            circuit, faults, alphabet, backend=backend
        )
    else:
        next_index, output_index = _extract_arrays_reference(
            circuit, faults, alphabet, states
        )

    if store is not None:
        from repro.store.artifacts import stg_payload

        try:
            store.put(
                "stg",
                key,
                stg_payload(
                    circuit, faults, alphabet, num_outputs, next_index, output_index
                ),
            )
        except OSError:
            pass  # unwritable store degrades to recomputation

    return ExplicitSTG(
        name=name,
        num_inputs=len(circuit.input_names),
        num_registers=num_registers,
        alphabet=alphabet,
        states=states,
        num_outputs=num_outputs,
        next_index=next_index,
        output_index=output_index,
    )


__all__ = [
    "ExplicitSTG",
    "EngineLimits",
    "ENGINE_LIMITS",
    "ENGINE_TIERS",
    "DEFAULT_ENGINE",
    "STG_FORMAT_VERSION",
    "extract_stg",
    "select_engine",
    "engine_limits_table",
    "resolved_engine_name",
    "all_vectors",
    "StateSpaceTooLarge",
    "State",
    "Vector",
]
