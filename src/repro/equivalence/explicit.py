"""Explicit state-transition-graph extraction from gate-level circuits.

The paper's Section II definitions (state equivalence, space/time
containment, functional synchronizing sequences) are all properties of the
state transition graph.  For circuits with a modest number of flip-flops
(the paper's examples have 1-3, the synthesized benchmarks 5-7) the STG can
be built exactly by enumerating all binary states and input vectors and
simulating one clock cycle for each pair.

Faulty machines are first-class: pass a fault to :func:`extract_stg` to get
the STG of the faulty circuit ``K^f``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.circuit.netlist import Circuit
from repro.faults.model import StuckAtFault
from repro.simulation.sequential import SequentialSimulator

State = Tuple[int, ...]
Vector = Tuple[int, ...]

MAX_EXPLICIT_REGISTERS = 16
MAX_EXPLICIT_INPUTS = 10


class StateSpaceTooLarge(ValueError):
    """Raised when explicit enumeration would be intractable."""


@dataclass(frozen=True)
class ExplicitSTG:
    """A fully enumerated Mealy machine."""

    name: str
    num_inputs: int
    num_registers: int
    alphabet: Tuple[Vector, ...]
    states: Tuple[State, ...]
    next_state: Dict[Tuple[State, Vector], State]
    output: Dict[Tuple[State, Vector], Tuple[int, ...]]

    def successors(self, state: State) -> List[State]:
        return [self.next_state[(state, vector)] for vector in self.alphabet]

    def step_set(self, states: Iterable[State], vector: Vector) -> FrozenSet[State]:
        """Image of a state set under one input vector."""
        return frozenset(self.next_state[(state, vector)] for state in states)

    def run(self, state: State, vectors: Sequence[Vector]) -> Tuple[State, List[Tuple[int, ...]]]:
        """Final state and per-cycle outputs from ``state`` under ``vectors``."""
        outputs = []
        current = state
        for vector in vectors:
            outputs.append(self.output[(current, vector)])
            current = self.next_state[(current, vector)]
        return current, outputs

    def states_after(self, steps: int) -> FrozenSet[State]:
        """``K_i``: states reachable from *any* state after ``i`` transitions."""
        current: FrozenSet[State] = frozenset(self.states)
        for _ in range(steps):
            current = frozenset(
                self.next_state[(state, vector)]
                for state in current
                for vector in self.alphabet
            )
        return current

    def reachable_from(self, start: State) -> FrozenSet[State]:
        """All states reachable from ``start`` (the paper's *valid states*
        when ``start`` is a reset state)."""
        seen: Set[State] = {start}
        frontier = [start]
        while frontier:
            state = frontier.pop()
            for successor in self.successors(state):
                if successor not in seen:
                    seen.add(successor)
                    frontier.append(successor)
        return frozenset(seen)


def all_vectors(width: int) -> List[Vector]:
    """All binary vectors of ``width`` bits, lexicographic."""
    return [tuple(bits) for bits in itertools.product((0, 1), repeat=width)]


def extract_stg(
    circuit: Circuit,
    fault: Optional[StuckAtFault] = None,
    alphabet: Optional[Sequence[Vector]] = None,
) -> ExplicitSTG:
    """Enumerate the (possibly faulty) machine's full STG.

    Raises :class:`StateSpaceTooLarge` when the circuit has more than
    ``MAX_EXPLICIT_REGISTERS`` flip-flops or ``MAX_EXPLICIT_INPUTS`` inputs
    (with the default full alphabet).
    """
    num_registers = circuit.num_registers()
    if num_registers > MAX_EXPLICIT_REGISTERS:
        raise StateSpaceTooLarge(
            f"{circuit.name}: {num_registers} flip-flops is too many for "
            f"explicit enumeration (max {MAX_EXPLICIT_REGISTERS})"
        )
    if alphabet is None:
        if len(circuit.input_names) > MAX_EXPLICIT_INPUTS:
            raise StateSpaceTooLarge(
                f"{circuit.name}: {len(circuit.input_names)} inputs is too "
                f"many for the full alphabet (max {MAX_EXPLICIT_INPUTS})"
            )
        alphabet = all_vectors(len(circuit.input_names))
    alphabet = tuple(tuple(v) for v in alphabet)

    simulator = SequentialSimulator(circuit, fault=fault)
    states = tuple(all_vectors(num_registers))
    next_state: Dict[Tuple[State, Vector], State] = {}
    output: Dict[Tuple[State, Vector], Tuple[int, ...]] = {}
    for state in states:
        for vector in alphabet:
            result = simulator.step(state, vector)
            next_state[(state, vector)] = result.next_state
            output[(state, vector)] = result.outputs
    suffix = "" if fault is None else f"^{fault.describe(circuit)}"
    return ExplicitSTG(
        name=circuit.name + suffix,
        num_inputs=len(circuit.input_names),
        num_registers=num_registers,
        alphabet=alphabet,
        states=states,
        next_state=next_state,
        output=output,
    )


__all__ = [
    "ExplicitSTG",
    "extract_stg",
    "all_vectors",
    "StateSpaceTooLarge",
    "State",
    "Vector",
    "MAX_EXPLICIT_REGISTERS",
    "MAX_EXPLICIT_INPUTS",
]
