"""State equivalence and the paper's containment relations (Section II).

Implemented by joint partition refinement over the disjoint union of any
number of machines sharing an input alphabet: two states (possibly in
different machines) fall in the same final block iff they are equivalent --
same output for every input and equivalent successors (the classic Mealy
machine bisimulation, which for deterministic complete machines coincides
with sequential I/O equivalence).

The default refinement loop (``engine="array"``) runs Moore-style rounds
directly over the machines' flat ``next_index``/``output_index`` tables:
signatures are small tuples of ints, block ids are dense lists indexed by
state index, and no ``(state, vector)`` pair is ever hashed.  The seed
implementation over dict signatures survives as ``engine="reference"`` and
the two are block-id-identical (same first-occurrence tie-breaking), which
the cross-engine parity suite asserts.

On top of the classifier:

* ``space_contains(a, b)``   --  ``a ⊇s b``: every state of ``b`` has an
  equivalent state in ``a``;
* ``space_equivalent(a, b)`` --  ``a ≡s b``;
* ``time_contains(a, b, n)`` --  ``a ⊇nt b``: every state of ``b_n`` has an
  equivalent state in ``a``;
* ``time_equivalence_bound(a, b, max_n)`` -- least ``N`` with ``a ≡Nt b``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.equivalence.explicit import ExplicitSTG, State

MachineState = Tuple[int, State]  # (machine index, state)


@dataclass(frozen=True)
class StateClassification:
    """Result of joint partition refinement over several machines."""

    machines: Tuple[ExplicitSTG, ...]
    class_of: Dict[MachineState, int]

    def equivalent(self, a: MachineState, b: MachineState) -> bool:
        return self.class_of[a] == self.class_of[b]

    def classes_of_machine(self, index: int) -> FrozenSet[int]:
        return frozenset(self.class_array(index))

    def equivalence_classes(self, index: int) -> Dict[int, List[State]]:
        """class id -> states of machine ``index`` in that class."""
        classes: Dict[int, List[State]] = {}
        machine = self.machines[index]
        for state, cls in zip(machine.states, self.class_array(index)):
            classes.setdefault(cls, []).append(state)
        return classes

    def class_array(self, index: int) -> Tuple[int, ...]:
        """Class ids of machine ``index``'s states, in state-index order."""
        machine = self.machines[index]
        class_of = self.class_of
        return tuple(class_of[(index, state)] for state in machine.states)

    def class_bitsets(self, index: int) -> Dict[int, int]:
        """class id -> bitset of machine ``index``'s states in that class."""
        masks: Dict[int, int] = {}
        for state_idx, cls in enumerate(self.class_array(index)):
            masks[cls] = masks.get(cls, 0) | (1 << state_idx)
        return masks


def classify(
    machines: Sequence[ExplicitSTG], engine: str = "array"
) -> StateClassification:
    """Joint bisimulation partition refinement.

    ``engine="array"`` (default) refines over the flat tables;
    ``engine="reference"`` is the seed dict-signature implementation kept
    for cross-checking.  Both assign identical block ids.
    """
    if not machines:
        raise ValueError("need at least one machine")
    alphabet = machines[0].alphabet
    for machine in machines[1:]:
        if machine.alphabet != alphabet:
            raise ValueError(
                f"machines {machines[0].name!r} and {machine.name!r} have "
                "different input alphabets"
            )
    if engine == "reference":
        return _classify_reference(machines, alphabet)
    if engine != "array":
        raise ValueError(f"unknown classify engine {engine!r}")
    return _classify_array(machines, alphabet)


def _classify_array(
    machines: Sequence[ExplicitSTG], alphabet: Tuple
) -> StateClassification:
    vector_range = range(len(alphabet))
    # Initial partition: output signature over the whole alphabet.  The
    # packed output ints are compared raw -- a machine's output width
    # disambiguates them across machines of different widths, keeping the
    # signature -> block mapping injective (ids then match the reference
    # engine's, which compares unpacked tuples).
    block_ids: Dict[Tuple, int] = {}
    class_arrays: List[List[int]] = []
    for machine in machines:
        output_index = machine.output_index
        width = machine.num_outputs
        arr: List[int] = []
        for state_idx in range(len(machine.states)):
            key = (width,) + tuple(output_index[v][state_idx] for v in vector_range)
            block = block_ids.get(key)
            if block is None:
                block = block_ids[key] = len(block_ids)
            arr.append(block)
        class_arrays.append(arr)
    num_classes = len(block_ids)
    while True:
        block_ids = {}
        new_arrays: List[List[int]] = []
        for machine, arr in zip(machines, class_arrays):
            next_index = machine.next_index
            new: List[int] = []
            for state_idx in range(len(machine.states)):
                key = (arr[state_idx],) + tuple(
                    arr[next_index[v][state_idx]] for v in vector_range
                )
                block = block_ids.get(key)
                if block is None:
                    block = block_ids[key] = len(block_ids)
                new.append(block)
            new_arrays.append(new)
        if len(block_ids) == num_classes:
            class_of = {
                (index, state): new_arrays[index][state_idx]
                for index, machine in enumerate(machines)
                for state_idx, state in enumerate(machine.states)
            }
            return StateClassification(tuple(machines), class_of)
        class_arrays = new_arrays
        num_classes = len(block_ids)


def _classify_reference(
    machines: Sequence[ExplicitSTG], alphabet: Tuple
) -> StateClassification:
    universe: List[MachineState] = [
        (index, state)
        for index, machine in enumerate(machines)
        for state in machine.states
    ]
    signature: Dict[MachineState, Tuple] = {
        (index, state): tuple(
            machines[index].output[(state, vector)] for vector in alphabet
        )
        for index, state in universe
    }
    class_of = _blocks_from_signatures(universe, signature)
    while True:
        refined_signature = {
            (index, state): (
                class_of[(index, state)],
                tuple(
                    class_of[(index, machines[index].next_state[(state, vector)])]
                    for vector in alphabet
                ),
            )
            for index, state in universe
        }
        new_class_of = _blocks_from_signatures(universe, refined_signature)
        if len(set(new_class_of.values())) == len(set(class_of.values())):
            return StateClassification(tuple(machines), new_class_of)
        class_of = new_class_of


def _blocks_from_signatures(
    universe: List[MachineState], signature: Dict[MachineState, Tuple]
) -> Dict[MachineState, int]:
    block_ids: Dict[Tuple, int] = {}
    class_of: Dict[MachineState, int] = {}
    for item in universe:
        key = signature[item]
        if key not in block_ids:
            block_ids[key] = len(block_ids)
        class_of[item] = block_ids[key]
    return class_of


def states_equivalent(
    a: ExplicitSTG, state_a: State, b: ExplicitSTG, state_b: State
) -> bool:
    """Paper Section II: same I/O behaviour from the two states."""
    classification = classify([a, b])
    return classification.equivalent((0, state_a), (1, state_b))


def space_contains(a: ExplicitSTG, b: ExplicitSTG) -> bool:
    """``a ⊇s b``: every state in ``b`` has at least one equivalent in ``a``."""
    classification = classify([a, b])
    available = set(classification.class_array(0))
    return all(cls in available for cls in classification.class_array(1))


def space_equivalent(a: ExplicitSTG, b: ExplicitSTG) -> bool:
    """``a ≡s b``: mutual space containment."""
    classification = classify([a, b])
    classes_a = set(classification.class_array(0))
    classes_b = set(classification.class_array(1))
    return classes_a == classes_b


def time_contains(a: ExplicitSTG, b: ExplicitSTG, steps: int) -> bool:
    """``a ⊇(steps)t b``: every state of ``b_steps`` has an equivalent in ``a``."""
    classification = classify([a, b])
    available = set(classification.class_array(0))
    classes_b = classification.class_array(1)
    after = b.states_after_bitset(steps)
    return all(
        classes_b[state_idx] in available for state_idx in b.iter_bitset_indices(after)
    )


def time_equivalence_bound(
    a: ExplicitSTG, b: ExplicitSTG, max_steps: int
) -> Optional[int]:
    """Least ``N <= max_steps`` with ``a ≡Nt b`` (None when not found).

    ``a ≡Nt b`` iff ``a ⊇Nt b`` and ``b ⊇Nt a``; containment is monotone in
    ``N`` (``K_i ⊇s K_{i+1}``), so the least bound is well defined.
    """
    classification = classify([a, b])
    classes_a = classification.class_array(0)
    classes_b = classification.class_array(1)
    available_a = set(classes_a)
    available_b = set(classes_b)
    for steps in range(max_steps + 1):
        classes_a_after = {
            classes_a[state_idx]
            for state_idx in a.iter_bitset_indices(a.states_after_bitset(steps))
        }
        classes_b_after = {
            classes_b[state_idx]
            for state_idx in b.iter_bitset_indices(b.states_after_bitset(steps))
        }
        if classes_b_after <= available_a and classes_a_after <= available_b:
            return steps
    return None


__all__ = [
    "StateClassification",
    "classify",
    "states_equivalent",
    "space_contains",
    "space_equivalent",
    "time_contains",
    "time_equivalence_bound",
]
