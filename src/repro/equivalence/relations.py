"""State equivalence and the paper's containment relations (Section II).

Implemented by joint partition refinement over the disjoint union of any
number of machines sharing an input alphabet: two states (possibly in
different machines) fall in the same final block iff they are equivalent --
same output for every input and equivalent successors (the classic Mealy
machine bisimulation, which for deterministic complete machines coincides
with sequential I/O equivalence).

On top of the classifier:

* ``space_contains(a, b)``   --  ``a ⊇s b``: every state of ``b`` has an
  equivalent state in ``a``;
* ``space_equivalent(a, b)`` --  ``a ≡s b``;
* ``time_contains(a, b, n)`` --  ``a ⊇nt b``: every state of ``b_n`` has an
  equivalent state in ``a``;
* ``time_equivalence_bound(a, b, max_n)`` -- least ``N`` with ``a ≡Nt b``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.equivalence.explicit import ExplicitSTG, State

MachineState = Tuple[int, State]  # (machine index, state)


@dataclass(frozen=True)
class StateClassification:
    """Result of joint partition refinement over several machines."""

    machines: Tuple[ExplicitSTG, ...]
    class_of: Dict[MachineState, int]

    def equivalent(self, a: MachineState, b: MachineState) -> bool:
        return self.class_of[a] == self.class_of[b]

    def classes_of_machine(self, index: int) -> FrozenSet[int]:
        return frozenset(
            cls
            for (machine, _state), cls in self.class_of.items()
            if machine == index
        )

    def equivalence_classes(self, index: int) -> Dict[int, List[State]]:
        """class id -> states of machine ``index`` in that class."""
        classes: Dict[int, List[State]] = {}
        for (machine, state), cls in self.class_of.items():
            if machine == index:
                classes.setdefault(cls, []).append(state)
        return classes


def classify(machines: Sequence[ExplicitSTG]) -> StateClassification:
    """Joint bisimulation partition refinement."""
    if not machines:
        raise ValueError("need at least one machine")
    alphabet = machines[0].alphabet
    for machine in machines[1:]:
        if machine.alphabet != alphabet:
            raise ValueError(
                f"machines {machines[0].name!r} and {machine.name!r} have "
                "different input alphabets"
            )
    universe: List[MachineState] = [
        (index, state)
        for index, machine in enumerate(machines)
        for state in machine.states
    ]
    # Initial partition: output signature over the whole alphabet.
    signature: Dict[MachineState, Tuple] = {
        (index, state): tuple(
            machines[index].output[(state, vector)] for vector in alphabet
        )
        for index, state in universe
    }
    class_of = _blocks_from_signatures(universe, signature)
    while True:
        refined_signature = {
            (index, state): (
                class_of[(index, state)],
                tuple(
                    class_of[(index, machines[index].next_state[(state, vector)])]
                    for vector in alphabet
                ),
            )
            for index, state in universe
        }
        new_class_of = _blocks_from_signatures(universe, refined_signature)
        if len(set(new_class_of.values())) == len(set(class_of.values())):
            return StateClassification(tuple(machines), new_class_of)
        class_of = new_class_of


def _blocks_from_signatures(
    universe: List[MachineState], signature: Dict[MachineState, Tuple]
) -> Dict[MachineState, int]:
    block_ids: Dict[Tuple, int] = {}
    class_of: Dict[MachineState, int] = {}
    for item in universe:
        key = signature[item]
        if key not in block_ids:
            block_ids[key] = len(block_ids)
        class_of[item] = block_ids[key]
    return class_of


def states_equivalent(
    a: ExplicitSTG, state_a: State, b: ExplicitSTG, state_b: State
) -> bool:
    """Paper Section II: same I/O behaviour from the two states."""
    classification = classify([a, b])
    return classification.equivalent((0, state_a), (1, state_b))


def space_contains(a: ExplicitSTG, b: ExplicitSTG) -> bool:
    """``a ⊇s b``: every state in ``b`` has at least one equivalent in ``a``."""
    classification = classify([a, b])
    available = classification.classes_of_machine(0)
    return all(
        classification.class_of[(1, state)] in available for state in b.states
    )


def space_equivalent(a: ExplicitSTG, b: ExplicitSTG) -> bool:
    """``a ≡s b``: mutual space containment."""
    classification = classify([a, b])
    classes_a = classification.classes_of_machine(0)
    classes_b = classification.classes_of_machine(1)
    return classes_a == classes_b


def time_contains(a: ExplicitSTG, b: ExplicitSTG, steps: int) -> bool:
    """``a ⊇(steps)t b``: every state of ``b_steps`` has an equivalent in ``a``."""
    classification = classify([a, b])
    available = classification.classes_of_machine(0)
    return all(
        classification.class_of[(1, state)] in available
        for state in b.states_after(steps)
    )


def time_equivalence_bound(
    a: ExplicitSTG, b: ExplicitSTG, max_steps: int
) -> Optional[int]:
    """Least ``N <= max_steps`` with ``a ≡Nt b`` (None when not found).

    ``a ≡Nt b`` iff ``a ⊇Nt b`` and ``b ⊇Nt a``; containment is monotone in
    ``N`` (``K_i ⊇s K_{i+1}``), so the least bound is well defined.
    """
    classification = classify([a, b])
    for steps in range(max_steps + 1):
        classes_a_after = {
            classification.class_of[(0, state)] for state in a.states_after(steps)
        }
        classes_b_after = {
            classification.class_of[(1, state)] for state in b.states_after(steps)
        }
        available_a = classification.classes_of_machine(0)
        available_b = classification.classes_of_machine(1)
        if classes_b_after <= available_a and classes_a_after <= available_b:
            return steps
    return None


__all__ = [
    "StateClassification",
    "classify",
    "states_equivalent",
    "space_contains",
    "space_equivalent",
    "time_contains",
    "time_equivalence_bound",
]
