"""Reachability-bounded STG extraction: the ``engine="reach"`` tier.

The explicit engines (``reference``, ``bitset``) enumerate all ``2^r``
initial states; real synthesized FSMs typically reach only a tiny fraction
of that space from their reset state.  This module BFS-expands only the
states actually reachable from a chosen initial set, packing each frontier
level into lanes of one compiled bit-parallel sweep per input vector (the
same ``backend="bigint"|"numpy"`` word kernels the bitset engine uses),
and grows the flat ``next_index``/``output_index`` tables incrementally as
new states are interned.

Before traversal the circuit is passed through
:func:`repro.circuit.cone.cone_of_influence`: registers and gates outside
every output's support are dropped, so the traversed machine can be
strictly smaller than the original.  Faults are remapped onto the reduced
circuit; a fault on a dropped edge cannot affect any output or any kept
register's next state, so its machine is table-identical to the fault-free
one.

The result is a :class:`ReachableSTG` -- an :class:`~repro.equivalence.
explicit.ExplicitSTG` whose state universe *is the reachable set* (in
deterministic BFS discovery order).  Classification, sync-sequence search
and :func:`~repro.equivalence.relations.time_equivalence_bound` run on it
unchanged, with *reachability-bounded* semantics: "all states" means "all
states reachable from the initial set".  The reachable set is closed under
transitions, so on the overlap with the exhaustive engines the induced
classification and sync-sequence results coincide exactly with the
full-machine results restricted to the reachable states (the cross-engine
parity suite asserts it); with ``initial_states="all"`` the tables are
bit-identical to the bitset engine's.

Extracted machines are memoized in the artifact store (kind ``reach-stg``)
keyed by circuit digest, fault coordinates, alphabet and initial-state
specification.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.circuit.cone import ConeReduction, cone_of_influence
from repro.circuit.netlist import Circuit, LineRef
from repro.equivalence import bitset as _bitset
from repro.equivalence.explicit import (
    ENGINE_LIMITS,
    ExplicitSTG,
    State,
    StateSpaceTooLarge,
    Vector,
    _unpack_bits,
)
from repro.faults.model import StuckAtFault
from repro.simulation.cache import vector_fast_stepper

#: Bump when the ``reach-stg`` artifact payload layout, the traversal
#: order, or the cone-of-influence reduction semantics change; folded into
#: :func:`repro.store.core.schema_version`.
REACH_FORMAT_VERSION = 1

#: Frontier levels are swept in lane blocks of this width.  4096 lanes is
#: 64 words for the numpy word-plane runner (one fixed-width runner is
#: reused across all blocks and levels) and keeps the bigint rails at a
#: comfortable machine-int multiple.
REACH_LANE_BLOCK = 1 << 12

InitialStates = Union[None, str, Iterable[State]]


class ReachableSTG(ExplicitSTG):
    """An :class:`ExplicitSTG` whose state universe is the reachable set.

    ``states`` holds only the states discovered by the BFS, in
    deterministic discovery order: the initial set first (sorted by packed
    state code), then level by level, successors in (vector index, lane
    index) order.  ``full_bitset`` therefore means "every reachable
    state", which gives the classification / sync-sequence / Lemma 2
    machinery reachability-bounded semantics without modification.

    ``num_registers`` is the register count of the cone-reduced machine
    the states live over; ``total_registers`` is the original circuit's.
    """

    __slots__ = (
        "total_registers",
        "initial_bitset",
        "peak_frontier",
        "levels",
        "dropped_registers",
    )

    def __init__(
        self,
        *args,
        total_registers: int,
        initial_bitset: int,
        peak_frontier: int,
        levels: int,
        dropped_registers: int,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        self.total_registers = total_registers
        self.initial_bitset = initial_bitset
        self.peak_frontier = peak_frontier
        self.levels = levels
        self.dropped_registers = dropped_registers

    @property
    def visited_states(self) -> int:
        """Number of reachable states discovered (== ``len(self.states)``)."""
        return len(self.states)

    @property
    def total_states(self) -> int:
        """Size of the traversed (cone-reduced) machine's full state space."""
        return 1 << self.num_registers

    def __repr__(self) -> str:
        return (
            f"ReachableSTG({self.name!r}, visited={self.visited_states} of "
            f"{self.total_states}, vectors={len(self.alphabet)}, "
            f"peak_frontier={self.peak_frontier})"
        )


# -- initial-state specification ---------------------------------------------


def _initial_spec_and_codes(
    circuit: Circuit,
    cone: ConeReduction,
    initial_states: InitialStates,
    num_vectors: int,
) -> Tuple[object, List[int]]:
    """Normalize the initial-state request into (store spec, packed codes).

    Codes are packed MSB-first over the *cone* registers (register ``j``
    carries bit ``rc - 1 - j``, the bitset engine's lane numbering) and
    returned sorted ascending, so the interning order -- and with it every
    downstream table -- is deterministic.
    """
    reduced_registers = cone.circuit.num_registers()
    if initial_states is None or initial_states == "reset":
        return "reset", [0]
    if initial_states == "all":
        limits = ENGINE_LIMITS["reach"]
        if (
            limits.transitions is not None
            and (1 << reduced_registers) * num_vectors > limits.transitions
        ):
            raise StateSpaceTooLarge(
                f"{circuit.name}: initial_states='all' over "
                f"{reduced_registers} registers x {num_vectors} vectors "
                f"exceeds the reach engine's transition cap "
                f"({limits.transitions}); use the default reset seed"
            )
        return "all", list(range(1 << reduced_registers))
    if isinstance(initial_states, str):
        raise ValueError(
            f"unknown initial_states spec {initial_states!r} "
            "(choose 'reset', 'all', or an iterable of register states)"
        )
    total_registers = circuit.num_registers()
    codes = set()
    for state in initial_states:
        state = tuple(state)
        if len(state) == total_registers:
            projected = cone.project_state(state)
        elif len(state) == reduced_registers and cone.is_identity:
            projected = state
        else:
            raise ValueError(
                f"{circuit.name}: initial state {state!r} has width "
                f"{len(state)}, expected {total_registers} register bits"
            )
        code = 0
        for bit in projected:
            if bit not in (0, 1):
                raise ValueError(
                    f"{circuit.name}: initial states must be binary, "
                    f"got {state!r}"
                )
            code = code << 1 | bit
        codes.add(code)
    if not codes:
        raise ValueError(f"{circuit.name}: initial_states is empty")
    ordered = sorted(codes)
    return ["explicit", ordered], ordered


# -- fault remapping onto the cone -------------------------------------------


def _remap_faults(
    cone: ConeReduction, faults: Sequence[StuckAtFault]
) -> List[StuckAtFault]:
    """Faults re-addressed to reduced edge indices; dropped-edge faults
    vanish (they cannot affect any output or kept-register next state)."""
    remapped: List[StuckAtFault] = []
    for fault in faults:
        new_edge = cone.edge_map.get(fault.line.edge_index)
        if new_edge is None:
            continue
        remapped.append(
            StuckAtFault(LineRef(new_edge, fault.line.segment), fault.value)
        )
    return remapped


def _injection_masks(stepper, faults: Sequence[StuckAtFault], width: int):
    sa1, sa0 = stepper.blank_injection_masks()
    mask = (1 << width) - 1
    # Last fault wins per line, matching the reference simulator.
    forced = {fault.line: fault.value for fault in faults}
    for line, value in forced.items():
        slot = stepper.line_slot[line]
        if value == 1:
            sa1[slot] = mask
        else:
            sa0[slot] = mask
    return sa1, sa0


# -- per-block frontier sweeps -----------------------------------------------


#: Below this block width the scalar bigint sweep beats the numpy
#: word-plane sweep, whose per-gate array-call overhead is width-
#: independent; ``backend="auto"`` switches per block at this line.
REACH_NUMPY_MIN_LANES = 512


def _make_sweeper(reduced, stepper, faults, alphabet, backend: str):
    from repro.simulation.backends import resolve_backend

    if resolve_backend(backend) != "numpy":
        return _sweeper_bigint(reduced, stepper, faults, alphabet)
    numpy_sweep = _sweeper_numpy(reduced, stepper, faults, alphabet)
    if backend == "numpy":
        return numpy_sweep
    # auto: most reachable frontiers are narrow, where bigint wins; fall
    # through to the word-plane kernel only on wide blocks.
    bigint_sweep = _sweeper_bigint(reduced, stepper, faults, alphabet)

    def sweep(block):
        if len(block) >= REACH_NUMPY_MIN_LANES:
            return numpy_sweep(block)
        return bigint_sweep(block)

    return sweep


def _sweeper_bigint(reduced, stepper, faults, alphabet):
    """sweep(codes) -> per-vector (next_codes, output_codes) lists."""
    num_registers = stepper.compiled.num_registers
    num_outputs = len(reduced.output_names)

    def sweep(block: Sequence[int]):
        width = len(block)
        mask = (1 << width) - 1
        ones_by_register = [0] * num_registers
        for lane, code in enumerate(block):
            remaining = code
            while remaining:
                position = (remaining & -remaining).bit_length() - 1
                ones_by_register[num_registers - 1 - position] |= 1 << lane
                remaining &= remaining - 1
        rails = tuple(
            (ones, mask ^ ones) for ones in ones_by_register
        )
        if faults:
            sa1, sa0 = _injection_masks(stepper, faults, width)
            step = lambda packed: stepper.step_inject(  # noqa: E731
                rails, packed, mask, sa1, sa0
            )
        else:
            step = lambda packed: stepper.step_clean(  # noqa: E731
                rails, packed, mask
            )
        results = []
        for vector in alphabet:
            packed = stepper.broadcast_vector(vector, width)
            out_rails, next_rails = step(packed)
            next_codes = [0] * width
            for register, (ones, zeros) in enumerate(next_rails):
                _bitset._check_binary(
                    reduced, ones, zeros, mask, "register", register
                )
                _bitset.decode_plane_into(
                    next_codes, ones, 1 << (num_registers - 1 - register), width
                )
            out_codes = [0] * width
            for position, (ones, zeros) in enumerate(out_rails):
                _bitset._check_binary(
                    reduced, ones, zeros, mask, "output", position
                )
                _bitset.decode_plane_into(
                    out_codes, ones, 1 << (num_outputs - 1 - position), width
                )
            results.append((next_codes, out_codes))
        return results

    return sweep


def _sweeper_numpy(reduced, stepper, faults, alphabet):
    """The word-plane leg: runners sized to the frontier, cached per width.

    Sweeping a fixed ``REACH_LANE_BLOCK``-wide runner regardless of
    frontier size would make sparse traversals pay the full 4096-lane
    cost per level, so blocks are padded only up to the next power of two
    (>= 64 lanes) and one runner is cached per padded width -- at most
    seven runners ever exist.  Padding lanes are parked in state 0 (ones
    rail clear, zeros rail set), which keeps every rail binary; only the
    block's own lanes are decoded.
    """
    import numpy as np

    from repro.simulation.wordplane import width_mask_words, wordplane_plan

    num_registers = stepper.compiled.num_registers
    num_outputs = len(reduced.output_names)
    plan = wordplane_plan(stepper)
    reg0 = plan.reg0
    runners = {}

    def runner_for(width: int):
        padded = 64
        while padded < width:
            padded <<= 1
        entry = runners.get(padded)
        if entry is None:
            runner = plan.runner(padded)
            mask_words = width_mask_words(padded, runner.words)
            if faults:
                sa1, sa0 = _injection_masks(stepper, faults, padded)
                runner.set_group(sa1, sa0)
            entry = runners[padded] = (runner, mask_words)
        return entry

    def lane_bits(words: "np.ndarray", count: int) -> "np.ndarray":
        return np.unpackbits(words.view(np.uint8), count=count, bitorder="little")

    def sweep(block: Sequence[int]):
        width = len(block)
        runner, mask_words = runner_for(width)
        codes = np.asarray(block, dtype=np.uint64)
        state_words = np.zeros((2 * num_registers, runner.words), dtype=np.uint64)
        for register in range(num_registers):
            shift = np.uint64(num_registers - 1 - register)
            bits = ((codes >> shift) & np.uint64(1)).astype(np.uint8)
            packed = np.packbits(bits, bitorder="little")
            ones = np.zeros(runner.words, dtype=np.uint64)
            ones.view(np.uint8)[: len(packed)] = packed
            state_words[2 * register] = ones
            state_words[2 * register + 1] = mask_words & ~ones
        results = []
        for vector in alphabet:
            runner.V[reg0 : reg0 + 2 * num_registers] = state_words
            runner.set_broadcast_vector(vector)
            runner.step()
            next_block = runner.next_state_view()
            next_row = np.zeros(width, dtype=np.int64)
            for register in range(num_registers):
                ones = next_block[2 * register]
                zeros = next_block[2 * register + 1]
                _bitset._check_binary_words(
                    reduced, ones, zeros, mask_words, "register", register
                )
                next_row += lane_bits(ones, width).astype(np.int64) << (
                    num_registers - 1 - register
                )
            out_block = runner.output_view()
            out_row = np.zeros(width, dtype=np.int64)
            for position in range(num_outputs):
                ones = out_block[2 * position]
                zeros = out_block[2 * position + 1]
                _bitset._check_binary_words(
                    reduced, ones, zeros, mask_words, "output", position
                )
                out_row += lane_bits(ones, width).astype(np.int64) << (
                    num_outputs - 1 - position
                )
            results.append(
                ([int(v) for v in next_row], [int(v) for v in out_row])
            )
        return results

    return sweep


# -- the BFS traversal --------------------------------------------------------


def _traverse(
    reduced: Circuit,
    stepper,
    faults: Sequence[StuckAtFault],
    alphabet: Sequence[Vector],
    initial_codes: Sequence[int],
    backend: str,
) -> Tuple[List[int], List[List[int]], List[List[int]], int, int]:
    """BFS over reachable states, one lane-parallel sweep per level block.

    Returns ``(codes, next_rows, output_rows, peak_frontier, levels)``
    where ``codes[i]`` is the packed register code of state ``i`` in
    discovery order and the rows are flat ``[vector][state]`` tables whose
    entries are state indices / packed output ints.  Each state's table
    row is produced by the level that discovered it, so rows stay aligned
    with the interning order by construction; successor entries may
    forward-reference states interned later in the same or a deeper level.
    """
    limits = ENGINE_LIMITS["reach"]
    sweep = _make_sweeper(reduced, stepper, faults, alphabet, backend)

    intern: Dict[int, int] = {}
    codes: List[int] = []
    for code in initial_codes:
        if code not in intern:
            intern[code] = len(codes)
            codes.append(code)
    next_rows: List[List[int]] = [[] for _ in alphabet]
    output_rows: List[List[int]] = [[] for _ in alphabet]

    frontier = list(codes)
    peak_frontier = 0
    levels = 0
    while frontier:
        if (
            limits.transitions is not None
            and len(codes) * len(alphabet) > limits.transitions
        ):
            raise StateSpaceTooLarge(
                f"{reduced.name}: the reach engine visited {len(codes)} "
                f"states x {len(alphabet)} vectors, exceeding its "
                f"{limits.transitions}-transition cap; the reachable set is "
                "not sparse enough for reachability-bounded extraction"
            )
        peak_frontier = max(peak_frontier, len(frontier))
        levels += 1
        discovered: List[int] = []
        for start in range(0, len(frontier), REACH_LANE_BLOCK):
            block = frontier[start : start + REACH_LANE_BLOCK]
            for vector_index, (next_codes, out_codes) in enumerate(sweep(block)):
                row = next_rows[vector_index]
                for code in next_codes:
                    index = intern.get(code)
                    if index is None:
                        index = len(codes)
                        intern[code] = index
                        codes.append(code)
                        discovered.append(code)
                    row.append(index)
                output_rows[vector_index].extend(out_codes)
        frontier = discovered
    return codes, next_rows, output_rows, peak_frontier, levels


# -- store plumbing -----------------------------------------------------------


def _reach_store_key(store, circuit, faults, alphabet, initial_spec) -> str:
    from repro.circuit.digest import circuit_digest
    from repro.store.artifacts import encode_faults

    return store.key(
        "reach-stg",
        circuit_digest(circuit),
        encode_faults(faults),
        [list(map(int, vector)) for vector in alphabet],
        initial_spec,
    )


# -- entry point --------------------------------------------------------------


def extract_stg_reach(
    circuit: Circuit,
    faults: Sequence[StuckAtFault],
    alphabet: Sequence[Vector],
    *,
    use_store: bool = True,
    backend: str = "auto",
    initial_states: InitialStates = None,
) -> ReachableSTG:
    """Reachability-bounded STG of the (possibly faulty) machine.

    Called through :func:`repro.equivalence.explicit.extract_stg` with
    ``engine="reach"``; ``faults`` and ``alphabet`` arrive normalized.
    ``initial_states`` seeds the traversal: ``None``/``"reset"`` starts
    from the all-zero register state, ``"all"`` from the full (cone) state
    space (making the result bit-identical to the bitset engine's tables),
    and an iterable of full-width register states starts from exactly
    those states.
    """
    limits = ENGINE_LIMITS["reach"]
    cone = cone_of_influence(circuit)
    reduced = cone.circuit
    reduced_registers = reduced.num_registers()
    if reduced_registers > limits.registers:
        raise StateSpaceTooLarge(
            f"{circuit.name}: {reduced_registers} flip-flops in the output "
            f"cone ({cone.dropped_registers} dropped) is too many for the "
            f"reach engine (limit {limits.registers} registers); no larger "
            "engine tier exists"
        )
    initial_spec, initial_codes = _initial_spec_and_codes(
        circuit, cone, initial_states, len(alphabet)
    )
    kept_faults = _remap_faults(cone, faults)
    if faults:
        suffix = "^" + "+".join(f.describe(circuit) for f in faults)
    else:
        suffix = ""
    name = circuit.name + suffix
    num_outputs = len(circuit.output_names)

    def build(codes, next_rows, output_rows, peak_frontier, levels):
        states = tuple(
            _unpack_bits(code, reduced_registers) for code in codes
        )
        return ReachableSTG(
            name=name,
            num_inputs=len(circuit.input_names),
            num_registers=reduced_registers,
            alphabet=alphabet,
            states=states,
            num_outputs=num_outputs,
            next_index=next_rows,
            output_index=output_rows,
            total_registers=circuit.num_registers(),
            initial_bitset=(1 << len(initial_codes)) - 1,
            peak_frontier=peak_frontier,
            levels=levels,
            dropped_registers=cone.dropped_registers,
        )

    store = None
    key = None
    if use_store:
        from repro.store.core import default_store

        store = default_store()
    if store is not None:
        from repro.store.artifacts import reach_stg_from_payload

        key = _reach_store_key(store, circuit, faults, alphabet, initial_spec)
        payload = store.get("reach-stg", key)
        if payload is not None:
            tables = reach_stg_from_payload(
                payload, circuit, faults, alphabet, initial_spec
            )
            if tables is not None:
                return build(*tables)

    stepper = vector_fast_stepper(reduced)
    codes, next_rows, output_rows, peak_frontier, levels = _traverse(
        reduced, stepper, kept_faults, alphabet, initial_codes, backend
    )

    from repro.equivalence.explicit import _STORE_MAX_ENTRIES

    if store is not None and len(codes) * len(alphabet) <= _STORE_MAX_ENTRIES:
        from repro.store.artifacts import reach_stg_payload

        try:
            store.put(
                "reach-stg",
                key,
                reach_stg_payload(
                    circuit,
                    faults,
                    alphabet,
                    initial_spec,
                    num_outputs,
                    codes,
                    next_rows,
                    output_rows,
                    reduced_registers,
                    cone.dropped_registers,
                    peak_frontier,
                    levels,
                ),
            )
        except OSError:
            pass  # unwritable store degrades to recomputation

    return build(codes, next_rows, output_rows, peak_frontier, levels)


__all__ = [
    "REACH_FORMAT_VERSION",
    "REACH_LANE_BLOCK",
    "ReachableSTG",
    "extract_stg_reach",
]
