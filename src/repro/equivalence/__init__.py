"""Explicit state-space analysis: the paper's Section II machinery.

STG extraction (including faulty machines), state equivalence via joint
partition refinement, space/time containment and equivalence relations, and
structural/functional synchronizing sequences.
"""

from repro.equivalence.explicit import (
    ExplicitSTG,
    StateSpaceTooLarge,
    all_vectors,
    extract_stg,
)
from repro.equivalence.relations import (
    StateClassification,
    classify,
    space_contains,
    space_equivalent,
    states_equivalent,
    time_contains,
    time_equivalence_bound,
)
from repro.equivalence.syncseq import (
    covered_states,
    find_functional_sync_sequence,
    find_structural_sync_sequence,
    functional_final_states,
    is_functional_sync_sequence,
    is_structural_sync_sequence,
    structural_final_state,
    synchronizes_up_to_equivalence,
)

__all__ = [
    "ExplicitSTG",
    "extract_stg",
    "all_vectors",
    "StateSpaceTooLarge",
    "classify",
    "StateClassification",
    "states_equivalent",
    "space_contains",
    "space_equivalent",
    "time_contains",
    "time_equivalence_bound",
    "is_structural_sync_sequence",
    "synchronizes_up_to_equivalence",
    "covered_states",
    "structural_final_state",
    "find_structural_sync_sequence",
    "is_functional_sync_sequence",
    "functional_final_states",
    "find_functional_sync_sequence",
]
