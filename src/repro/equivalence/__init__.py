"""Explicit state-space analysis: the paper's Section II machinery.

STG extraction (including faulty machines), state equivalence via joint
partition refinement, space/time containment and equivalence relations, and
structural/functional synchronizing sequences.

Extraction, classification and the functional sync-sequence searches all
run on a bit-packed engine by default (flat transition tables built by
lane-parallel simulation, state sets as int bitsets); the scalar seed
implementations stay available as ``engine="reference"`` and are asserted
result-identical by the cross-engine parity suite.
"""

from repro.equivalence.explicit import (
    DEFAULT_ENGINE,
    ENGINE_LIMITS,
    ENGINE_TIERS,
    EngineLimits,
    ExplicitSTG,
    STG_FORMAT_VERSION,
    StateSpaceTooLarge,
    all_vectors,
    engine_limits_table,
    extract_stg,
    resolved_engine_name,
    select_engine,
)
from repro.equivalence.reach import REACH_FORMAT_VERSION, ReachableSTG
from repro.equivalence.relations import (
    StateClassification,
    classify,
    space_contains,
    space_equivalent,
    states_equivalent,
    time_contains,
    time_equivalence_bound,
)
from repro.equivalence.syncseq import (
    covered_states,
    find_functional_sync_sequence,
    find_structural_sync_sequence,
    functional_final_states,
    is_functional_sync_sequence,
    is_structural_sync_sequence,
    structural_final_state,
    synchronizes_up_to_equivalence,
)

__all__ = [
    "ExplicitSTG",
    "ReachableSTG",
    "EngineLimits",
    "ENGINE_LIMITS",
    "ENGINE_TIERS",
    "DEFAULT_ENGINE",
    "STG_FORMAT_VERSION",
    "REACH_FORMAT_VERSION",
    "extract_stg",
    "select_engine",
    "engine_limits_table",
    "resolved_engine_name",
    "all_vectors",
    "StateSpaceTooLarge",
    "classify",
    "StateClassification",
    "states_equivalent",
    "space_contains",
    "space_equivalent",
    "time_contains",
    "time_equivalence_bound",
    "is_structural_sync_sequence",
    "synchronizes_up_to_equivalence",
    "covered_states",
    "structural_final_state",
    "find_structural_sync_sequence",
    "is_functional_sync_sequence",
    "functional_final_states",
    "find_functional_sync_sequence",
]
