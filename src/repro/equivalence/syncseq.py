"""Synchronizing sequences: structural (3-valued) and functional (STG-based).

Paper Section II distinguishes:

* **structural-based** sequences: validated by three-valued simulation from
  the all-X state -- conservative, and preserved by retiming for
  fault-free circuits (Theorem 1);
* **functional-based** sequences: validated on the state transition graph
  -- a sequence synchronizes the machine when, applied from *every* initial
  state, it always lands in a single equivalence class of states.  These
  are *not* preserved by retiming in general (Observation 1); Theorem 2
  restores them with a prefix of arbitrary vectors.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.circuit.netlist import Circuit
from repro.equivalence.explicit import ExplicitSTG, State, Vector, all_vectors
from repro.equivalence.relations import StateClassification, classify
from repro.logic.three_valued import Trit, X
from repro.simulation.cache import fast_stepper


# -- structural (three-valued) ------------------------------------------------
#
# These checks sit inside retiming/verification loops, so they run on the
# cached code-generated stepper rather than the interpreted reference
# simulator (identical semantics, cross-checked by the test suite).


def is_structural_sync_sequence(
    circuit: Circuit, vectors: Sequence[Sequence[Trit]]
) -> bool:
    """Three-valued simulation from all-X ends in a fully binary state."""
    return all(value != X for value in structural_final_state(circuit, vectors))


def structural_final_state(
    circuit: Circuit, vectors: Sequence[Sequence[Trit]]
) -> Tuple[Trit, ...]:
    """The ternary state reached from all-X (binary iff synchronizing)."""
    return fast_stepper(circuit).run(vectors)[1]


def find_structural_sync_sequence(
    circuit: Circuit,
    max_length: int = 8,
    max_visited: int = 200_000,
) -> Optional[List[Vector]]:
    """Shortest structural synchronizing sequence by BFS over ternary states.

    Returns None when no sequence of length <= ``max_length`` exists (or the
    search budget is exhausted).
    """
    stepper = fast_stepper(circuit)
    step = stepper.step
    alphabet = all_vectors(len(circuit.input_names))
    start = stepper.unknown_state()
    if X not in start:
        return []
    visited: Set[Tuple[Trit, ...]] = {start}
    queue: deque = deque([(start, [])])
    while queue:
        state, path = queue.popleft()
        if len(path) >= max_length:
            continue
        for vector in alphabet:
            next_state = step(state, vector)[1]
            new_path = path + [vector]
            if X not in next_state:
                return new_path
            if next_state not in visited:
                if len(visited) >= max_visited:
                    return None
                visited.add(next_state)
                queue.append((next_state, new_path))
    return None


def covered_states(ternary_state: Sequence[Trit]):
    """All binary states a ternary state vector covers (X bits expand)."""
    import itertools

    choices = [
        (0, 1) if value == X else (value,) for value in ternary_state
    ]
    return [tuple(bits) for bits in itertools.product(*choices)]


def synchronizes_up_to_equivalence(
    circuit: Circuit,
    vectors: Sequence[Sequence[Trit]],
    engine: Optional[str] = None,
) -> bool:
    """Three-valued sync where leftover X bits must be unobservable.

    The paper's notion of a synchronized machine allows "a set of
    equivalent states".  After retiming, a structurally synchronizing
    sequence can leave X on registers whose content provably never reaches
    an output (e.g. a register parked behind a reset-controlled gate); the
    machine is then synchronized in the theorem's sense even though the
    ternary state is not fully binary.  This check expands the leftover X
    bits and verifies all covered states are mutually equivalent.

    Only usable on circuits small enough for explicit STG extraction.
    """
    from repro.equivalence.explicit import extract_stg
    from repro.equivalence.relations import classify

    final = structural_final_state(circuit, vectors)
    if X not in final:
        return True
    stg = extract_stg(circuit, engine=engine)
    if len(stg.states) != 1 << circuit.num_registers():
        raise ValueError(
            f"{circuit.name}: synchronizes_up_to_equivalence must expand "
            "leftover X bits over the full state space; the chosen engine "
            f"produced a partial STG ({len(stg.states)} states) -- use an "
            "exhaustive engine or initial_states='all'"
        )
    classification = classify([stg])
    classes = {
        classification.class_of[(0, state)] for state in covered_states(final)
    }
    return len(classes) == 1


# -- functional (STG-based) ----------------------------------------------------
#
# State sets travel as Python-int bitsets (bit s <=> stg.states[s]) in the
# default engine: images are table lookups through the STG's memoized
# (vector_idx, bitset) cache, the "single equivalence class" test is one
# mask comparison, and BFS dedup hashes machine ints instead of frozensets
# of tuples.  The seed frozenset implementations survive as
# ``engine="reference"``; both traverse in identical (BFS x alphabet)
# order, so they find identical sequences and hit identical search-budget
# cutoffs.


def _require_sync_engine(engine: str) -> str:
    # "reach" is accepted as an alias of the bitset search: a ReachableSTG
    # carries reachable states only, so its full_bitset already *is* the
    # reachability-bounded start set and the int-bitset BFS applies as-is.
    if engine not in ("bitset", "reference", "reach"):
        raise ValueError(f"unknown sync-sequence engine {engine!r}")
    return "bitset" if engine == "reach" else engine


def _start_bitset(stg: ExplicitSTG, start_states) -> int:
    if start_states is None:
        return stg.full_bitset
    return stg.bitset_of_states(start_states)


def _start_frozenset(stg: ExplicitSTG, start_states) -> FrozenSet[State]:
    if start_states is None:
        return frozenset(stg.states)
    return frozenset(tuple(state) for state in start_states)


def _machine_index_of(stg: ExplicitSTG, classification: StateClassification) -> int:
    for index, machine in enumerate(classification.machines):
        if machine is stg:
            return index
    return 0


def _class_masks(
    stg: ExplicitSTG, classification: StateClassification
) -> Tuple[Tuple[int, ...], Dict[int, int]]:
    machine_index = _machine_index_of(stg, classification)
    return (
        classification.class_array(machine_index),
        classification.class_bitsets(machine_index),
    )


def _bitset_within_one_class(
    bits: int, class_array: Sequence[int], class_masks: Dict[int, int]
) -> bool:
    lowest = (bits & -bits).bit_length() - 1
    return bits & ~class_masks[class_array[lowest]] == 0


def _within_one_class(
    states: FrozenSet[State],
    classification: StateClassification,
    machine_index: int = 0,
) -> bool:
    classes = {classification.class_of[(machine_index, s)] for s in states}
    return len(classes) == 1


def is_functional_sync_sequence(
    stg: ExplicitSTG,
    vectors: Sequence[Vector],
    classification: Optional[StateClassification] = None,
    engine: str = "bitset",
    start_states: Optional[Iterable[State]] = None,
) -> bool:
    """Applied from every initial state, the machine lands in one
    equivalence class of states (a known and unique state up to
    equivalence, per the paper's definition).

    ``start_states`` restricts the initial set (default: every state of
    the machine) -- the restriction the reach engine's parity suite uses
    to compare reachability-bounded searches against full-space ones.
    """
    engine = _require_sync_engine(engine)
    if classification is None:
        classification = classify([stg])
    if engine == "reference":
        current = _start_frozenset(stg, start_states)
        for vector in vectors:
            current = stg.step_set(current, tuple(vector))
        return _within_one_class(
            current, classification, _machine_index_of(stg, classification)
        )
    bits = _start_bitset(stg, start_states)
    for vector in vectors:
        bits = stg.image_bitset(bits, stg.index_of_vector(vector))
    class_array, class_masks = _class_masks(stg, classification)
    return _bitset_within_one_class(bits, class_array, class_masks)


def functional_final_states(
    stg: ExplicitSTG,
    vectors: Sequence[Vector],
    engine: str = "bitset",
    start_states: Optional[Iterable[State]] = None,
) -> FrozenSet[State]:
    """Image of the (full or restricted) start state set under the sequence."""
    engine = _require_sync_engine(engine)
    if engine == "reference":
        current = _start_frozenset(stg, start_states)
        for vector in vectors:
            current = stg.step_set(current, tuple(vector))
        return current
    bits = _start_bitset(stg, start_states)
    for vector in vectors:
        bits = stg.image_bitset(bits, stg.index_of_vector(vector))
    return stg.states_of_bitset(bits)


def find_functional_sync_sequence(
    stg: ExplicitSTG,
    max_length: int = 10,
    max_visited: int = 200_000,
    classification: Optional[StateClassification] = None,
    engine: str = "bitset",
    start_states: Optional[Iterable[State]] = None,
) -> Optional[List[Vector]]:
    """Shortest functional synchronizing sequence by BFS over state sets.

    Returns None when no sequence of length <= ``max_length`` exists or the
    ``max_visited`` set budget is exhausted.  Both engines explore sets in
    the same order, so results (and budget cutoffs) are identical.
    ``start_states`` restricts the initial set (default: every state).
    """
    engine = _require_sync_engine(engine)
    if classification is None:
        classification = classify([stg])
    if engine == "reference":
        return _find_functional_reference(
            stg, max_length, max_visited, classification,
            _start_frozenset(stg, start_states),
        )
    class_array, class_masks = _class_masks(stg, classification)
    start = _start_bitset(stg, start_states)
    if _bitset_within_one_class(start, class_array, class_masks):
        return []
    vector_range = range(len(stg.alphabet))
    visited: Set[int] = {start}
    queue: deque = deque([(start, [])])
    while queue:
        bits, path = queue.popleft()
        if len(path) >= max_length:
            continue
        for vector_index in vector_range:
            image = stg.image_bitset(bits, vector_index)
            new_path = path + [stg.alphabet[vector_index]]
            if _bitset_within_one_class(image, class_array, class_masks):
                return new_path
            if image not in visited:
                if len(visited) >= max_visited:
                    return None
                visited.add(image)
                queue.append((image, new_path))
    return None


def _find_functional_reference(
    stg: ExplicitSTG,
    max_length: int,
    max_visited: int,
    classification: StateClassification,
    start: FrozenSet[State],
) -> Optional[List[Vector]]:
    machine_index = _machine_index_of(stg, classification)
    if _within_one_class(start, classification, machine_index):
        return []
    visited: Set[FrozenSet[State]] = {start}
    queue: deque = deque([(start, [])])
    while queue:
        states, path = queue.popleft()
        if len(path) >= max_length:
            continue
        for vector in stg.alphabet:
            image = stg.step_set(states, vector)
            new_path = path + [vector]
            if _within_one_class(image, classification, machine_index):
                return new_path
            if image not in visited:
                if len(visited) >= max_visited:
                    return None
                visited.add(image)
                queue.append((image, new_path))
    return None


__all__ = [
    "is_structural_sync_sequence",
    "structural_final_state",
    "find_structural_sync_sequence",
    "is_functional_sync_sequence",
    "functional_final_states",
    "find_functional_sync_sequence",
]
