"""Content-addressed, disk-backed artifact store and run observability.

``repro.store`` gives every expensive intermediate of the Fig. 6 flow a
durable, keyed home so a warm process -- or the *next* process -- never
redoes proven work:

* :mod:`repro.store.core` -- the :class:`ArtifactStore`: SHA-256-keyed JSON
  records under ``~/.cache/repro-store`` (override with ``REPRO_STORE_DIR``),
  atomic write-rename, integrity-checked reads, hit/miss/eviction counters
  and a size-bounded GC;
* :mod:`repro.store.artifacts` -- typed encode/decode helpers for the
  artifact kinds the flow produces (netlists, retimings, stepper source,
  collapsed fault lists, test sets, ATPG and fault-sim results);
* :mod:`repro.store.journal` -- the structured JSONL run journal (stage
  timings, cache hits, store keys) that doubles as the benchmark
  observability layer and pins referenced artifacts against GC;
* :mod:`repro.store.checkpoint` -- mid-run checkpointing of per-fault ATPG
  outcomes, the substrate of ``--resume``;
* :mod:`repro.store.locks` -- advisory per-shard file locks, the
  concurrency discipline that lets several servers, CLI runs and GC loops
  share one store root without evicting freshly pinned artifacts.
"""

from repro.store.core import (
    ArtifactStore,
    StoreError,
    default_store,
    schema_version,
    set_default_store,
    store_enabled,
)
from repro.store.journal import RunJournal, journal_pinned_paths, tail_journal
from repro.store.checkpoint import AtpgCheckpoint
from repro.store.locks import FileLock, shard_lock, shard_of

__all__ = [
    "ArtifactStore",
    "StoreError",
    "AtpgCheckpoint",
    "FileLock",
    "RunJournal",
    "default_store",
    "journal_pinned_paths",
    "schema_version",
    "set_default_store",
    "shard_lock",
    "shard_of",
    "store_enabled",
    "tail_journal",
]
