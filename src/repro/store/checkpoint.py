"""Mid-run checkpointing of per-fault ATPG outcomes.

An ATPG run killed at second 29 of a 30-second budget used to leave
nothing behind.  The checkpoint is an append-only JSONL file, flushed per
line, that the engine writes as it goes:

* a ``header`` line binding the checkpoint to one (circuit, fault list,
  budget) triple -- digest, raw structural identity, fault-list
  fingerprint and budget knobs all must match for a resume to load;
* one ``random`` line when the random phase completes: its accepted
  sequences and detected faults (the phase is seeded but expensive, so a
  resumed run restores rather than replays it);
* one ``fault`` line per targeted fault with the raw PODEM outcome.

On resume (:meth:`AtpgCheckpoint.load`), outcomes that are deterministic
-- detections and genuine search exhaustions -- are restored and re-folded
through the engine's normal collateral-detection replay, so the
reconstructed state is bit-identical to the state the dying run had.
Outcomes that reflect the dead run's *clock* (budget aborts, faults never
reached) are deliberately **not** restored: those faults rejoin the queue,
which is exactly what distinguishes resuming from merely replaying.  A
torn trailing line (the kill point) is dropped; any malformed earlier line
invalidates only the tail from that point on.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.atpg.budget import AtpgBudget
from repro.circuit.digest import circuit_digest, structural_identity
from repro.circuit.netlist import Circuit
from repro.faults.model import StuckAtFault
from repro.store.artifacts import (
    budget_fingerprint,
    decode_fault,
    decode_sequences,
    encode_fault,
    encode_sequences,
    faults_fingerprint,
)

#: Statuses a recorded fault outcome may carry.  ``det`` and ``search`` are
#: deterministic and restorable; ``abort``/``unattempted`` are clock
#: artifacts and requeue on resume.
RESTORABLE = ("det", "search")


@dataclass
class RecordedOutcome:
    """One targeted fault's recorded raw outcome."""

    status: str  # det | search | abort | unattempted
    sequence: Optional[List[Tuple[int, ...]]]
    backtracks: int


@dataclass
class CheckpointState:
    """What a valid checkpoint restores into the engine."""

    sequences: List[List[Tuple[int, ...]]]
    random_detected_faults: List[StuckAtFault]
    random_detected: int
    outcomes: Dict[StuckAtFault, RecordedOutcome] = field(default_factory=dict)

    def restorable(self, fault: StuckAtFault) -> Optional[RecordedOutcome]:
        outcome = self.outcomes.get(fault)
        if outcome is not None and outcome.status in RESTORABLE:
            return outcome
        return None


def _header_payload(
    circuit: Circuit, faults: Sequence[StuckAtFault], budget: AtpgBudget
) -> Dict[str, object]:
    return {
        "digest": circuit_digest(circuit),
        "structure": structural_identity(circuit),
        "faults": faults_fingerprint(faults),
        "budget": budget_fingerprint(budget),
    }


class AtpgCheckpoint:
    """Writer/reader for one checkpoint file."""

    def __init__(self, path: str):
        self.path = os.path.abspath(path)
        self._handle = None

    def exists(self) -> bool:
        return os.path.exists(self.path)

    # -- writing ------------------------------------------------------------

    def _open(self, mode: str) -> None:
        if self._handle is None or self._handle.closed:
            os.makedirs(os.path.dirname(self.path) or ".", exist_ok=True)
            self._handle = open(self.path, mode, encoding="utf-8")

    def _write(self, record: Dict[str, object]) -> None:
        if self._handle is None or self._handle.closed:
            self._open("a")
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()

    def start(
        self, circuit: Circuit, faults: Sequence[StuckAtFault], budget: AtpgBudget
    ) -> None:
        """Begin a fresh checkpoint (truncates any stale one)."""
        self._open("w")
        self._write({"e": "header", **_header_payload(circuit, faults, budget)})

    def resume_marker(self) -> None:
        """Append a marker so the file records each resumption."""
        self._open("a")
        self._write({"e": "resumed", "pid": os.getpid()})

    def record_random_phase(
        self,
        sequences: Sequence[Sequence[Tuple[int, ...]]],
        detected: Sequence[StuckAtFault],
        random_detected: int,
    ) -> None:
        self._write(
            {
                "e": "random",
                "sequences": encode_sequences(sequences),
                "detected": [encode_fault(f) for f in sorted(detected)],
                "count": random_detected,
            }
        )

    def record_fault(self, fault: StuckAtFault, outcome) -> None:
        """Record one raw :class:`~repro.atpg.parallel.FaultOutcome`."""
        if not outcome.attempted:
            status = "unattempted"
        elif outcome.detected and outcome.sequence is not None:
            status = "det"
        elif outcome.aborted:
            status = "abort"
        else:
            status = "search"
        record: Dict[str, object] = {
            "e": "fault",
            "f": encode_fault(fault),
            "s": status,
            "bt": outcome.backtracks,
        }
        if status == "det":
            record["seq"] = encode_sequences([outcome.sequence])[0]
        self._write(record)

    def close(self) -> None:
        if self._handle is not None and not self._handle.closed:
            self._handle.close()

    def discard(self) -> None:
        """Delete the file (a completed run no longer needs it)."""
        self.close()
        try:
            os.unlink(self.path)
        except OSError:
            pass

    # -- reading ------------------------------------------------------------

    def load(
        self, circuit: Circuit, faults: Sequence[StuckAtFault], budget: AtpgBudget
    ) -> Optional[CheckpointState]:
        """Restore state, or ``None`` when the file is absent, bound to a
        different (circuit, faults, budget) triple, or dies before the
        random phase completed (a full restart loses nothing then)."""
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                lines = handle.readlines()
        except OSError:
            return None
        records: List[Dict[str, object]] = []
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                break  # torn write: drop this line and everything after
            if not isinstance(record, dict):
                break
            records.append(record)
        if not records or records[0].get("e") != "header":
            return None
        header = records[0]
        expected = _header_payload(circuit, faults, budget)
        if any(header.get(k) != v for k, v in expected.items()):
            return None
        state: Optional[CheckpointState] = None
        for record in records[1:]:
            kind = record.get("e")
            try:
                if kind == "random":
                    state = CheckpointState(
                        sequences=decode_sequences(record["sequences"]),
                        random_detected_faults=[
                            decode_fault(item) for item in record["detected"]
                        ],
                        random_detected=int(record["count"]),
                    )
                elif kind == "fault" and state is not None:
                    fault = decode_fault(record["f"])
                    sequence = None
                    if record.get("seq") is not None:
                        sequence = decode_sequences([record["seq"]])[0]
                    # Last occurrence wins: a resumed run appends fresh
                    # outcomes for faults the dead run had only aborted.
                    state.outcomes[fault] = RecordedOutcome(
                        str(record["s"]), sequence, int(record.get("bt", 0))
                    )
            except (KeyError, TypeError, ValueError, IndexError):
                break  # malformed tail: trust only the prefix
        return state


__all__ = ["AtpgCheckpoint", "CheckpointState", "RecordedOutcome", "RESTORABLE"]
