"""Typed artifact records: encode/decode between flow objects and store JSON.

Every helper pair here round-trips one artifact kind:

==============  =========================================================
kind            contents
==============  =========================================================
``netlist``     a full circuit: exact graph (for faithful reconstruction)
                plus its BENCH text (the interoperable, human-readable view)
``retiming``    a retiming labelling for a circuit
``faults``      a collapsed fault list (edge/segment/value coordinates)
``stepper``     the generated scalar and bit-parallel stepper source
``testset``     a :class:`~repro.testset.model.TestSet` in its text format
``atpg``        a complete :class:`~repro.atpg.engine.AtpgResult`
``faultsim``    a :class:`~repro.faultsim.result.FaultSimResult` summary
``stg``         explicit state-transition-graph tables (flat
                ``next_index``/``output_index`` arrays of one possibly
                faulty machine, see :mod:`repro.equivalence.explicit`)
``reach-stg``   reachability-bounded STG tables (visited state codes in
                discovery order plus their flat tables, the initial-state
                spec and the traversal statistics, see
                :mod:`repro.equivalence.reach`)
``scoap``       SCOAP testability measures of one circuit (per-node
                CC0/CC1/CO, per-edge observability and detection-depth
                bounds, see :mod:`repro.atpg.guidance`)
``guidance-data``  the shared predictor training dataset (feature vector
                + effort label per fault, layout ``FEATURE_NAMES``),
                appended to by every store-backed ATPG stage
``predictor``   the trained fault-effort meta-predictor (handled by
                :func:`repro.atpg.guidance.save_predictor` /
                ``load_predictor`` via ``MetaPredictor.to_payload``)
==============  =========================================================

Artifacts that carry edge-indexed coordinates (``faults``, ``atpg``,
``faultsim``, ``stepper``, ``stg``, ``reach-stg``, ``scoap``)
additionally record
:func:`~repro.circuit.digest.structural_identity`; their loaders refuse --
returning ``None``, a plain miss -- when the raw structure of the circuit
at hand differs from the one the artifact was computed on.  The content
digest addresses the artifact; the structural identity guards it.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Dict, List, Optional, Sequence, Tuple

from repro.atpg.budget import AtpgBudget
from repro.circuit.digest import structural_identity
from repro.circuit.bench_io import write_bench
from repro.circuit.netlist import Circuit, Edge, LineRef, Node
from repro.circuit.types import GateType, NodeKind
from repro.faults.model import StuckAtFault
from repro.faultsim.result import Detection, FaultSimResult
from repro.retiming.core import Retiming
from repro.store.core import ArtifactStore
from repro.testset.model import TestSet


# -- primitives -------------------------------------------------------------


def encode_fault(fault: StuckAtFault) -> List[int]:
    return [fault.line.edge_index, fault.line.segment, fault.value]


def decode_fault(item: Sequence[int]) -> StuckAtFault:
    return StuckAtFault(LineRef(int(item[0]), int(item[1])), int(item[2]))


def encode_faults(faults: Sequence[StuckAtFault]) -> List[List[int]]:
    return [encode_fault(fault) for fault in faults]


def decode_faults(items: Sequence[Sequence[int]]) -> List[StuckAtFault]:
    return [decode_fault(item) for item in items]


def encode_sequences(sequences) -> List[List[List[int]]]:
    return [[list(map(int, vector)) for vector in seq] for seq in sequences]


def decode_sequences(items) -> List[List[Tuple[int, ...]]]:
    return [[tuple(int(v) for v in vector) for vector in seq] for seq in items]


def faults_fingerprint(faults: Sequence[StuckAtFault]) -> str:
    """A stable key component for one ordered fault list."""
    return ArtifactStore.key("faults", encode_faults(faults))


def budget_fingerprint(budget: AtpgBudget) -> Dict[str, object]:
    """The budget's identity-relevant knobs, as a JSON-able mapping.

    Wall-clock caps are deliberately *included*: a result computed under a
    tighter clock may have budget-aborted faults a looser run would have
    targeted, so runs under different budgets must not share artifacts.
    """
    return asdict(budget)


# -- netlist ---------------------------------------------------------------


def circuit_payload(circuit: Circuit) -> Dict[str, object]:
    """Exact graph plus BENCH text.  The graph part reconstructs node names
    and edge numbering bit-for-bit, which downstream edge-indexed artifacts
    depend on; the BENCH text is the portable rendering."""
    return {
        "name": circuit.name,
        "nodes": [
            [
                node.name,
                node.kind.value,
                node.gate_type.value if node.gate_type is not None else None,
            ]
            for node in circuit.nodes.values()
        ],
        "edges": [
            [edge.source, edge.sink, edge.sink_pin, edge.weight]
            for edge in circuit.edges
        ],
        "structure": structural_identity(circuit),
        "bench": write_bench(circuit),
    }


def circuit_from_payload(payload: Dict[str, object]) -> Optional[Circuit]:
    try:
        nodes = {
            name: Node(
                name,
                NodeKind(kind),
                GateType(gate_type) if gate_type is not None else None,
            )
            for name, kind, gate_type in payload["nodes"]
        }
        edges = [
            Edge(index, source, sink, int(pin), int(weight))
            for index, (source, sink, pin, weight) in enumerate(payload["edges"])
        ]
        circuit = Circuit(str(payload["name"]), nodes, edges)
    except (KeyError, TypeError, ValueError):
        return None
    if structural_identity(circuit) != payload.get("structure"):
        return None
    return circuit


# -- retiming --------------------------------------------------------------


def retiming_payload(retiming: Retiming) -> Dict[str, object]:
    return {
        "structure": structural_identity(retiming.circuit),
        "labels": {name: int(label) for name, label in retiming.labels.items()},
    }


def retiming_from_payload(
    payload: Dict[str, object], circuit: Circuit
) -> Optional[Retiming]:
    if payload.get("structure") != structural_identity(circuit):
        return None
    try:
        labels = {str(name): int(label) for name, label in payload["labels"].items()}
        return Retiming(circuit, labels)
    except (KeyError, TypeError, ValueError):
        return None


# -- fault lists -----------------------------------------------------------


def faults_payload(circuit: Circuit, faults: Sequence[StuckAtFault]) -> Dict[str, object]:
    return {
        "structure": structural_identity(circuit),
        "faults": encode_faults(faults),
    }


def faults_from_payload(
    payload: Dict[str, object], circuit: Circuit
) -> Optional[List[StuckAtFault]]:
    if payload.get("structure") != structural_identity(circuit):
        return None
    try:
        return decode_faults(payload["faults"])
    except (KeyError, TypeError, ValueError, IndexError):
        return None


# -- test sets -------------------------------------------------------------


def testset_payload(test_set: TestSet) -> Dict[str, object]:
    return {
        "circuit_name": test_set.circuit_name,
        "num_inputs": test_set.num_inputs,
        "text": test_set.to_text(),
    }


def testset_from_payload(payload: Dict[str, object]) -> Optional[TestSet]:
    try:
        test_set = TestSet.from_text(str(payload["text"]))
    except (KeyError, TypeError, ValueError, IndexError):
        return None
    if test_set.num_inputs != payload.get("num_inputs"):
        return None
    return test_set


# -- ATPG results ----------------------------------------------------------


def atpg_result_payload(result) -> Dict[str, object]:
    """Everything :class:`~repro.atpg.engine.AtpgResult` carries, JSON-able."""
    return {
        "circuit_name": result.circuit_name,
        "testset": testset_payload(result.test_set),
        "num_faults": result.num_faults,
        "detected": encode_faults(sorted(result.detected)),
        "untestable": encode_faults(sorted(result.untestable)),
        "aborted": encode_faults(sorted(result.aborted)),
        "cpu_seconds": result.cpu_seconds,
        "backtracks": result.backtracks,
        "random_detected": result.random_detected,
        "deterministic_detected": result.deterministic_detected,
        "search_exhausted": result.search_exhausted,
        "budget_aborted": result.budget_aborted,
        "random_seconds": result.random_seconds,
        "deterministic_seconds": result.deterministic_seconds,
        "engine": result.engine,
        "workers": result.workers,
        "kernel": result.kernel,
        "engine_reason": result.engine_reason,
        "simulations": result.simulations,
        "frames_simulated": result.frames_simulated,
        "lanes_evaluated": result.lanes_evaluated,
        "guidance": result.guidance,
        "objective_choices": result.objective_choices,
    }


def atpg_result_from_payload(payload: Dict[str, object]):
    from repro.atpg.engine import AtpgResult

    try:
        test_set = testset_from_payload(payload["testset"])
        if test_set is None:
            return None
        return AtpgResult(
            circuit_name=str(payload["circuit_name"]),
            test_set=test_set,
            num_faults=int(payload["num_faults"]),
            detected=set(decode_faults(payload["detected"])),
            untestable=set(decode_faults(payload["untestable"])),
            aborted=set(decode_faults(payload["aborted"])),
            cpu_seconds=float(payload["cpu_seconds"]),
            backtracks=int(payload["backtracks"]),
            random_detected=int(payload["random_detected"]),
            deterministic_detected=int(payload["deterministic_detected"]),
            search_exhausted=int(payload["search_exhausted"]),
            budget_aborted=int(payload["budget_aborted"]),
            random_seconds=float(payload["random_seconds"]),
            deterministic_seconds=float(payload["deterministic_seconds"]),
            engine=str(payload["engine"]),
            workers=int(payload["workers"]),
            kernel=str(payload.get("kernel", "scalar")),
            engine_reason=str(payload.get("engine_reason", "")),
            simulations=int(payload.get("simulations", 0)),
            frames_simulated=int(payload.get("frames_simulated", 0)),
            lanes_evaluated=int(payload.get("lanes_evaluated", 0)),
            guidance=str(payload.get("guidance", "off")),
            objective_choices=int(payload.get("objective_choices", 0)),
        )
    except (KeyError, TypeError, ValueError, IndexError):
        return None


# -- fault-simulation results ----------------------------------------------


def faultsim_payload(circuit: Circuit, result: FaultSimResult) -> Dict[str, object]:
    return {
        "structure": structural_identity(circuit),
        "circuit_name": result.circuit_name,
        "engine": result.engine,
        "faults": encode_faults(result.faults),
        "detections": [
            encode_fault(fault) + [d.sequence_index, d.cycle, d.output_name]
            for fault, d in sorted(result.detections.items())
        ],
        "potential": encode_faults(sorted(result.potential)),
    }


def faultsim_from_payload(
    payload: Dict[str, object], circuit: Circuit
) -> Optional[FaultSimResult]:
    if payload.get("structure") != structural_identity(circuit):
        return None
    try:
        detections = {}
        for item in payload["detections"]:
            fault = decode_fault(item[:3])
            detections[fault] = Detection(int(item[3]), int(item[4]), str(item[5]))
        return FaultSimResult(
            circuit_name=str(payload["circuit_name"]),
            engine=str(payload["engine"]),
            faults=tuple(decode_faults(payload["faults"])),
            detections=detections,
            potential=set(decode_faults(payload["potential"])),
        )
    except (KeyError, TypeError, ValueError, IndexError):
        return None


# -- SCOAP testability measures ---------------------------------------------


def scoap_payload(circuit: Circuit, measures) -> Dict[str, object]:
    """A :class:`~repro.atpg.guidance.ScoapMeasures` record (kind
    ``scoap``).  Edge-indexed maps are keyed by the circuit's edge
    numbering, so the structural identity guards the whole payload."""
    return {
        "structure": structural_identity(circuit),
        "cc0": {name: float(v) for name, v in measures.cc0.items()},
        "cc1": {name: float(v) for name, v in measures.cc1.items()},
        "co": {name: float(v) for name, v in measures.co.items()},
        "edge_co": {str(i): float(v) for i, v in measures.edge_co.items()},
        "depth": {name: int(v) for name, v in measures.depth.items()},
        "min_frames": {
            str(i): int(v) for i, v in measures.min_frames.items()
        },
        "known": {name: int(v) for name, v in measures.known.items()},
        "pin_regs": {
            str(i): int(v) for i, v in measures.pin_regs.items()
        },
    }


def scoap_from_payload(payload: Dict[str, object], circuit: Circuit):
    from repro.atpg.guidance import ScoapMeasures

    if payload.get("structure") != structural_identity(circuit):
        return None
    try:
        return ScoapMeasures(
            cc0={str(n): float(v) for n, v in payload["cc0"].items()},
            cc1={str(n): float(v) for n, v in payload["cc1"].items()},
            co={str(n): float(v) for n, v in payload["co"].items()},
            edge_co={
                int(i): float(v) for i, v in payload["edge_co"].items()
            },
            depth={str(n): int(v) for n, v in payload["depth"].items()},
            min_frames={
                int(i): int(v) for i, v in payload["min_frames"].items()
            },
            known={str(n): int(v) for n, v in payload["known"].items()},
            pin_regs={
                int(i): int(v) for i, v in payload["pin_regs"].items()
            },
        )
    except (KeyError, TypeError, ValueError, AttributeError):
        return None


# -- guidance training data --------------------------------------------------


def guidance_rows_payload(
    feature_names: Sequence[str], rows: Sequence[Sequence[float]]
) -> Dict[str, object]:
    """Predictor training rows (kind ``guidance-data``): one list per
    fault, feature vector in ``feature_names`` layout with the effort
    label appended last.  Deliberately *not* structure-guarded: the
    dataset pools rows across circuits (the per-row features already
    carry the circuit-size context the predictor needs)."""
    return {
        "feature_names": list(feature_names),
        "rows": [[float(v) for v in row] for row in rows],
    }


def guidance_rows_from_payload(
    payload: Dict[str, object], feature_names: Sequence[str]
) -> Optional[List[List[float]]]:
    """The training rows, or ``None`` when the feature layout moved on
    (the layout echo is what keeps pooled rows comparable)."""
    if payload.get("feature_names") != list(feature_names):
        return None
    try:
        width = len(feature_names) + 1
        rows = [[float(v) for v in row] for row in payload["rows"]]
    except (KeyError, TypeError, ValueError):
        return None
    if any(len(row) != width for row in rows):
        return None
    return rows


# -- explicit STG tables ---------------------------------------------------


def stg_payload(
    circuit: Circuit,
    faults: Sequence[StuckAtFault],
    alphabet: Sequence[Tuple[int, ...]],
    num_outputs: int,
    next_index: Sequence[Sequence[int]],
    output_index: Sequence[Sequence[int]],
) -> Dict[str, object]:
    """Flat STG tables of one (possibly faulty) machine.

    The tables are state-index/edge-index-coordinate data, so the payload
    records the structural identity *and* echoes the fault coordinates and
    alphabet; the loader refuses on any mismatch with what the caller is
    about to compute, making a stale or colliding record a plain miss.
    """
    return {
        "structure": structural_identity(circuit),
        "faults": encode_faults(faults),
        "alphabet": [list(map(int, vector)) for vector in alphabet],
        "num_outputs": int(num_outputs),
        "next_index": [list(map(int, row)) for row in next_index],
        "output_index": [list(map(int, row)) for row in output_index],
    }


def stg_arrays_from_payload(
    payload: Dict[str, object],
    circuit: Circuit,
    faults: Sequence[StuckAtFault],
    alphabet: Sequence[Tuple[int, ...]],
) -> Optional[Tuple[int, Tuple[Tuple[int, ...], ...], Tuple[Tuple[int, ...], ...]]]:
    """``(num_outputs, next_index, output_index)`` or ``None`` on mismatch."""
    if payload.get("structure") != structural_identity(circuit):
        return None
    if payload.get("faults") != encode_faults(faults):
        return None
    if payload.get("alphabet") != [list(map(int, vector)) for vector in alphabet]:
        return None
    try:
        num_states = 1 << circuit.num_registers()
        next_index = tuple(
            tuple(int(entry) for entry in row) for row in payload["next_index"]
        )
        output_index = tuple(
            tuple(int(entry) for entry in row) for row in payload["output_index"]
        )
        num_outputs = int(payload["num_outputs"])
    except (KeyError, TypeError, ValueError):
        return None
    if len(next_index) != len(alphabet) or len(output_index) != len(alphabet):
        return None
    for row in next_index:
        if len(row) != num_states or any(
            not 0 <= entry < num_states for entry in row
        ):
            return None
    for row in output_index:
        if len(row) != num_states:
            return None
    return num_outputs, next_index, output_index


# -- reachability-bounded STG tables ----------------------------------------


def reach_stg_payload(
    circuit: Circuit,
    faults: Sequence[StuckAtFault],
    alphabet: Sequence[Tuple[int, ...]],
    initial_spec: object,
    num_outputs: int,
    state_codes: Sequence[int],
    next_index: Sequence[Sequence[int]],
    output_index: Sequence[Sequence[int]],
    cone_registers: int,
    dropped_registers: int,
    peak_frontier: int,
    levels: int,
) -> Dict[str, object]:
    """Reachability-bounded STG of one machine (kind ``reach-stg``).

    ``state_codes`` are the visited states' packed register codes in BFS
    discovery order -- that order *is* the state indexing of the tables,
    so it is recorded verbatim.  The echo guards mirror ``stg``: structure,
    faults, alphabet and additionally the initial-state spec, since the
    same circuit traversed from a different seed is a different machine.
    """
    return {
        "structure": structural_identity(circuit),
        "faults": encode_faults(faults),
        "alphabet": [list(map(int, vector)) for vector in alphabet],
        "initial": initial_spec,
        "num_outputs": int(num_outputs),
        "states": [int(code) for code in state_codes],
        "next_index": [list(map(int, row)) for row in next_index],
        "output_index": [list(map(int, row)) for row in output_index],
        "cone_registers": int(cone_registers),
        "dropped_registers": int(dropped_registers),
        "peak_frontier": int(peak_frontier),
        "levels": int(levels),
    }


def reach_stg_from_payload(
    payload: Dict[str, object],
    circuit: Circuit,
    faults: Sequence[StuckAtFault],
    alphabet: Sequence[Tuple[int, ...]],
    initial_spec: object,
) -> Optional[Tuple[List[int], List[List[int]], List[List[int]], int, int]]:
    """``(state_codes, next_index, output_index, peak_frontier, levels)``
    or ``None`` on any mismatch with what the caller would compute."""
    if payload.get("structure") != structural_identity(circuit):
        return None
    if payload.get("faults") != encode_faults(faults):
        return None
    if payload.get("alphabet") != [list(map(int, vector)) for vector in alphabet]:
        return None
    if payload.get("initial") != initial_spec:
        return None
    if payload.get("num_outputs") != len(circuit.output_names):
        return None
    try:
        cone_registers = int(payload["cone_registers"])
        codes = [int(code) for code in payload["states"]]
        next_index = [
            [int(entry) for entry in row] for row in payload["next_index"]
        ]
        output_index = [
            [int(entry) for entry in row] for row in payload["output_index"]
        ]
        peak_frontier = int(payload["peak_frontier"])
        levels = int(payload["levels"])
    except (KeyError, TypeError, ValueError):
        return None
    num_states = len(codes)
    if len(set(codes)) != num_states or any(
        not 0 <= code < (1 << cone_registers) for code in codes
    ):
        return None
    if len(next_index) != len(alphabet) or len(output_index) != len(alphabet):
        return None
    for row in next_index:
        if len(row) != num_states or any(
            not 0 <= entry < num_states for entry in row
        ):
            return None
    for row in output_index:
        if len(row) != num_states:
            return None
    return codes, next_index, output_index, peak_frontier, levels


# -- stepper source --------------------------------------------------------


def stepper_payload(
    circuit: Circuit,
    scalar_source: str,
    vector_clean: str,
    vector_inject: str,
    dual_source: str,
) -> Dict[str, object]:
    return {
        "structure": structural_identity(circuit),
        "scalar": scalar_source,
        "vector_clean": vector_clean,
        "vector_inject": vector_inject,
        "dual": dual_source,
    }


def stepper_sources_from_payload(
    payload: Dict[str, object], circuit: Circuit
) -> Optional[Tuple[str, str, str, str]]:
    if payload.get("structure") != structural_identity(circuit):
        return None
    try:
        return (
            str(payload["scalar"]),
            str(payload["vector_clean"]),
            str(payload["vector_inject"]),
            str(payload["dual"]),
        )
    except (KeyError, TypeError):
        return None


__all__ = [
    "atpg_result_from_payload",
    "atpg_result_payload",
    "budget_fingerprint",
    "circuit_from_payload",
    "circuit_payload",
    "decode_fault",
    "decode_faults",
    "decode_sequences",
    "encode_fault",
    "encode_faults",
    "encode_sequences",
    "faults_fingerprint",
    "faults_from_payload",
    "faults_payload",
    "faultsim_from_payload",
    "faultsim_payload",
    "guidance_rows_from_payload",
    "guidance_rows_payload",
    "reach_stg_from_payload",
    "reach_stg_payload",
    "retiming_from_payload",
    "retiming_payload",
    "scoap_from_payload",
    "scoap_payload",
    "stepper_payload",
    "stepper_sources_from_payload",
    "stg_arrays_from_payload",
    "stg_payload",
    "testset_from_payload",
    "testset_payload",
]
