"""Advisory file locks for multi-writer store access.

One :class:`FileLock` serializes critical sections across *processes* (via
``fcntl.flock`` on a dedicated lock file) and, because every acquisition
opens its own file descriptor, across *threads* of one process as well --
``flock`` locks belong to the open file description, so two descriptors on
the same path conflict even inside a single process.

The store uses them at two granularities:

* **shard locks** (``<root>/locks/shard-<xx>.lock``) -- one per two-hex-char
  key prefix, taken around every record read, write and GC eviction in that
  shard.  Holding the shard lock across *scan + unlink* (GC) and across
  *read + journal-pin* (pipeline loads) is what closes the eviction/pinning
  race: a pin either lands before the GC re-reads the journals inside the
  lock (and is honoured) or after the record is gone (a plain miss, the
  caller recomputes).
* **the counters lock** (``<root>/locks/counters.lock``) -- around
  read-modify-write updates of the persistent hit/miss counter file.

On platforms without ``fcntl`` (Windows) the lock degrades to a no-op:
single-writer discipline is then the caller's responsibility, exactly the
pre-sharding behaviour.  Lock files are never deleted while held; an empty
``locks/`` directory is recreated on demand.
"""

from __future__ import annotations

import os
from typing import Optional

try:  # POSIX only; the store degrades gracefully elsewhere
    import fcntl
except ImportError:  # pragma: no cover - exercised only on non-POSIX hosts
    fcntl = None  # type: ignore[assignment]


#: Directory (relative to a store root) holding every lock file.
LOCKS_DIRNAME = "locks"


class FileLock:
    """An exclusive advisory lock on one path, used as a context manager.

    Not reentrant: acquiring a lock this process (or thread) already holds
    deadlocks under ``flock`` semantics when done through a second
    descriptor, so critical sections must not nest on the same shard.
    """

    def __init__(self, path: str):
        self.path = os.path.abspath(path)
        self._fd: Optional[int] = None

    @property
    def held(self) -> bool:
        return self._fd is not None

    def acquire(self) -> None:
        if self._fd is not None:
            raise RuntimeError(f"lock {self.path} is not reentrant")
        os.makedirs(os.path.dirname(self.path), exist_ok=True)
        fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
        if fcntl is not None:
            try:
                fcntl.flock(fd, fcntl.LOCK_EX)
            except BaseException:
                os.close(fd)
                raise
        self._fd = fd

    def release(self) -> None:
        fd, self._fd = self._fd, None
        if fd is None:
            return
        try:
            if fcntl is not None:
                fcntl.flock(fd, fcntl.LOCK_UN)
        finally:
            os.close(fd)

    def __enter__(self) -> "FileLock":
        self.acquire()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()


def shard_of(key: str) -> str:
    """The shard a record key belongs to (its two-hex-char prefix)."""
    return key[:2]


def shard_lock(root: str, shard: str) -> FileLock:
    """The lock guarding one shard of the store rooted at ``root``."""
    return FileLock(os.path.join(root, LOCKS_DIRNAME, f"shard-{shard}.lock"))


def counters_lock(root: str) -> FileLock:
    """The lock guarding the persistent counters file of one store."""
    return FileLock(os.path.join(root, LOCKS_DIRNAME, "counters.lock"))


__all__ = ["FileLock", "LOCKS_DIRNAME", "counters_lock", "shard_lock", "shard_of"]
