"""The content-addressed artifact store.

Layout on disk::

    <root>/                        ~/.cache/repro-store or $REPRO_STORE_DIR
      journals/                    JSONL run journals (version-independent)
      v<schema>/                   one tree per store schema version
        checkpoints/               ATPG resume checkpoints
        <kind>/<k0k1>/<key>.json   artifact records, sharded by key prefix

The schema version concatenates the store format, the circuit-digest
version, the kernel-codegen versions and the STG table format, so bumping
any of them moves new
artifacts to a fresh tree and stale ones become garbage for :meth:`
ArtifactStore.gc` -- invalidation by versioning, never by in-place edits.

Records are single JSON documents wrapped with an integrity hash over the
payload.  Writes go through a same-directory temporary file and
``os.replace``, so concurrent writers of one key are safe (last writer
wins, readers never observe a partial file) and a crashed writer leaves
only an ignorable ``*.tmp``.  Reads validate the wrapper (parseable JSON,
matching kind/key/schema, payload hash); any violation -- a truncated
flush, a corrupted block, a hand-edited file -- counts as a miss, the file
is discarded best-effort, and the caller recomputes.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.circuit.digest import DIGEST_VERSION

#: Bump when the record wrapper or on-disk layout changes.
STORE_FORMAT = 1

#: Default size bound applied by ``python -m repro store gc`` when no
#: explicit ``--max-bytes`` is given.
DEFAULT_GC_MAX_BYTES = 512 * 1024 * 1024

_ENV_ROOT = "REPRO_STORE_DIR"
_ENV_DISABLE = "REPRO_STORE_DISABLE"


class StoreError(RuntimeError):
    """Raised for unusable store roots (not for per-record corruption)."""


def schema_version() -> str:
    """The composite schema version governing the active artifact tree."""
    from repro.equivalence.explicit import STG_FORMAT_VERSION
    from repro.equivalence.reach import REACH_FORMAT_VERSION
    from repro.simulation.backends import WORDPLANE_VERSION
    from repro.simulation.codegen import CODEGEN_VERSION
    from repro.simulation.dual_codegen import DUAL_CODEGEN_VERSION
    from repro.simulation.vector_codegen import VECTOR_CODEGEN_VERSION

    return (
        f"{STORE_FORMAT}.{DIGEST_VERSION}.{CODEGEN_VERSION}"
        f".{VECTOR_CODEGEN_VERSION}.{DUAL_CODEGEN_VERSION}.{STG_FORMAT_VERSION}"
        f".{WORDPLANE_VERSION}.{REACH_FORMAT_VERSION}"
    )


def default_root() -> str:
    override = os.environ.get(_ENV_ROOT)
    if override:
        return override
    return os.path.join(os.path.expanduser("~"), ".cache", "repro-store")


def store_enabled() -> bool:
    """False when ``REPRO_STORE_DISABLE`` is set to a truthy value."""
    return os.environ.get(_ENV_DISABLE, "") not in ("1", "true", "yes")


def _payload_sha(payload: object) -> str:
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass
class StoreStats:
    """Counters for one :class:`ArtifactStore` instance."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    errors: int = 0  # corrupted/unreadable records discarded on read
    evictions: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "errors": self.errors,
            "evictions": self.evictions,
        }


@dataclass
class ArtifactStore:
    """A content-addressed JSON artifact store rooted at ``root``."""

    root: str = field(default_factory=default_root)
    stats: StoreStats = field(default_factory=StoreStats)

    def __post_init__(self) -> None:
        self.root = os.path.abspath(os.path.expanduser(self.root))
        self.version_dir = os.path.join(self.root, f"v{schema_version()}")

    # -- key & path arithmetic ---------------------------------------------

    @staticmethod
    def key(*parts: object) -> str:
        """A stable SHA-256 key over JSON-serializable key parts."""
        canonical = json.dumps(list(parts), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def path_for(self, kind: str, key: str) -> str:
        return os.path.join(self.version_dir, kind, key[:2], f"{key}.json")

    @property
    def journal_dir(self) -> str:
        return os.path.join(self.root, "journals")

    @property
    def checkpoint_dir(self) -> str:
        return os.path.join(self.version_dir, "checkpoints")

    def checkpoint_path(self, key: str) -> str:
        return os.path.join(self.checkpoint_dir, f"{key}.jsonl")

    # -- record I/O ---------------------------------------------------------

    def get(self, kind: str, key: str) -> Optional[dict]:
        """The payload stored under ``(kind, key)``, or ``None`` on miss.

        Corrupted, truncated or wrapper-mismatched records are deleted
        best-effort and reported as misses, so callers always recompute
        rather than trusting damaged data.
        """
        path = self.path_for(kind, key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                record = json.load(handle)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            self._discard(path)
            return None
        if (
            not isinstance(record, dict)
            or record.get("kind") != kind
            or record.get("key") != key
            or record.get("schema") != schema_version()
            or "payload" not in record
            or record.get("sha256") != _payload_sha(record["payload"])
        ):
            self._discard(path)
            return None
        self.stats.hits += 1
        # Refresh the access time: GC evicts least-recently-used first.
        try:
            os.utime(path, None)
        except OSError:
            pass
        return record["payload"]

    def put(self, kind: str, key: str, payload: dict) -> str:
        """Atomically persist ``payload`` under ``(kind, key)``; returns the
        record path (relative to the store root, the form journals pin)."""
        path = self.path_for(kind, key)
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        record = {
            "kind": kind,
            "key": key,
            "schema": schema_version(),
            "created": time.time(),
            "sha256": _payload_sha(payload),
            "payload": payload,
        }
        fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(record, handle, separators=(",", ":"))
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        self.stats.writes += 1
        return os.path.relpath(path, self.root)

    def _discard(self, path: str) -> None:
        self.stats.errors += 1
        self.stats.misses += 1
        try:
            os.unlink(path)
        except OSError:
            pass

    # -- accounting & maintenance ------------------------------------------

    def artifact_files(self) -> List[str]:
        """Absolute paths of every artifact record, any schema version."""
        files: List[str] = []
        if not os.path.isdir(self.root):
            return files
        for entry in sorted(os.listdir(self.root)):
            if not entry.startswith("v"):
                continue
            tree = os.path.join(self.root, entry)
            for dirpath, _dirnames, filenames in os.walk(tree):
                if os.path.basename(dirpath) == "checkpoints":
                    continue
                for filename in sorted(filenames):
                    if filename.endswith(".json"):
                        files.append(os.path.join(dirpath, filename))
        return files

    def size_bytes(self) -> int:
        total = 0
        for path in self.artifact_files():
            try:
                total += os.path.getsize(path)
            except OSError:
                pass
        return total

    def summary(self) -> Dict[str, object]:
        """Headline store state for the ``store stats`` CLI."""
        files = self.artifact_files()
        by_kind: Dict[str, int] = {}
        for path in files:
            kind = os.path.basename(os.path.dirname(os.path.dirname(path)))
            by_kind[kind] = by_kind.get(kind, 0) + 1
        return {
            "root": self.root,
            "schema": schema_version(),
            "artifacts": len(files),
            "bytes": self.size_bytes(),
            "by_kind": dict(sorted(by_kind.items())),
            "session": self.stats.as_dict(),
        }

    def gc(
        self,
        max_bytes: Optional[int] = None,
        pinned: Iterable[str] = (),
    ) -> Dict[str, object]:
        """Evict least-recently-used artifacts until the store fits.

        ``pinned`` paths (absolute, or relative to the store root -- the
        form journals record) are never evicted: an artifact referenced by
        a live run journal must survive so the journal stays replayable.
        Stale *.tmp droppings from crashed writers are always removed.
        """
        if max_bytes is None:
            max_bytes = DEFAULT_GC_MAX_BYTES
        pinned_abs = {
            path if os.path.isabs(path) else os.path.join(self.root, path)
            for path in pinned
        }
        removed_tmp = 0
        if os.path.isdir(self.root):
            for dirpath, _dirnames, filenames in os.walk(self.root):
                for filename in filenames:
                    if filename.endswith(".tmp"):
                        try:
                            os.unlink(os.path.join(dirpath, filename))
                            removed_tmp += 1
                        except OSError:
                            pass
        entries: List[Tuple[float, int, str]] = []
        total = 0
        for path in self.artifact_files():
            try:
                stat = os.stat(path)
            except OSError:
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
            total += stat.st_size
        before = total
        evicted = 0
        skipped_pinned = 0
        for mtime, size, path in sorted(entries):
            if total <= max_bytes:
                break
            if os.path.abspath(path) in pinned_abs:
                skipped_pinned += 1
                continue
            try:
                os.unlink(path)
            except OSError:
                continue
            total -= size
            evicted += 1
        self.stats.evictions += evicted
        self._prune_empty_dirs()
        return {
            "before_bytes": before,
            "after_bytes": total,
            "max_bytes": max_bytes,
            "evicted": evicted,
            "skipped_pinned": skipped_pinned,
            "removed_tmp": removed_tmp,
        }

    def clear(self) -> int:
        """Delete every artifact record (journals and checkpoints stay)."""
        removed = 0
        for path in self.artifact_files():
            try:
                os.unlink(path)
                removed += 1
            except OSError:
                pass
        self._prune_empty_dirs()
        return removed

    def _prune_empty_dirs(self) -> None:
        if not os.path.isdir(self.root):
            return
        for dirpath, dirnames, filenames in os.walk(self.root, topdown=False):
            if dirpath == self.root or dirnames or filenames:
                continue
            try:
                os.rmdir(dirpath)
            except OSError:
                pass


_DEFAULT_STORE: Optional[ArtifactStore] = None


def default_store() -> Optional[ArtifactStore]:
    """The process-wide store singleton, or ``None`` when disabled.

    Created lazily from ``REPRO_STORE_DIR``/``~/.cache/repro-store``;
    ``REPRO_STORE_DISABLE=1`` turns it off globally (useful in tests and
    hermetic builds).
    """
    global _DEFAULT_STORE
    if not store_enabled():
        return None
    if _DEFAULT_STORE is None:
        _DEFAULT_STORE = ArtifactStore()
    return _DEFAULT_STORE


def set_default_store(store: Optional[ArtifactStore]) -> None:
    """Override (or reset, with ``None``) the process-wide store."""
    global _DEFAULT_STORE
    _DEFAULT_STORE = store


__all__ = [
    "ArtifactStore",
    "StoreError",
    "StoreStats",
    "DEFAULT_GC_MAX_BYTES",
    "STORE_FORMAT",
    "default_root",
    "default_store",
    "schema_version",
    "set_default_store",
    "store_enabled",
]
