"""The content-addressed artifact store.

Layout on disk::

    <root>/                        ~/.cache/repro-store or $REPRO_STORE_DIR
      locks/                       advisory shard/counter lock files
      counters.json                persistent hit/miss/eviction counters
      journals/                    JSONL run journals (version-independent)
      v<schema>/                   one tree per store schema version
        checkpoints/               ATPG resume checkpoints
        <kind>/<k0k1>/<key>.json   artifact records, sharded by key prefix
      tenants/<name>/              per-tenant namespaces, same inner layout
        journals/
        v<schema>/...

The schema version concatenates the store format, the circuit-digest
version, the kernel-codegen versions and the STG table format, so bumping
any of them moves new
artifacts to a fresh tree and stale ones become garbage for :meth:`
ArtifactStore.gc` -- invalidation by versioning, never by in-place edits.

Records are single JSON documents wrapped with an integrity hash over the
payload.  Writes go through a same-directory temporary file and
``os.replace``, so concurrent writers of one key are safe (last writer
wins, readers never observe a partial file) and a crashed writer leaves
only an ignorable ``*.tmp``.  Reads validate the wrapper (parseable JSON,
matching kind/key/schema, payload hash); any violation -- a truncated
flush, a corrupted block, a hand-edited file -- counts as a miss, the file
is discarded best-effort, and the caller recomputes.

**Concurrency discipline.**  The two-hex-char key prefix that already
shards each kind's directory doubles as the locking granule: every read,
write and GC eviction in shard ``xx`` holds ``locks/shard-xx.lock`` (see
:mod:`repro.store.locks`).  ``get`` accepts a ``pin`` callback invoked
*inside* the shard lock, so a pipeline can record its journal pin
atomically with the read; ``gc`` re-reads the journal pins inside the same
lock before every eviction.  A pin therefore either lands before the GC's
in-lock scan (and is honoured) or after the record is unlinked (a plain
miss) -- the window in which a freshly pinned artifact could be evicted is
gone.  Multiple servers or CLI runs sharing one root are safe.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import tempfile
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.circuit.digest import DIGEST_VERSION
from repro.store.locks import counters_lock, shard_lock, shard_of

#: Bump when the record wrapper or on-disk layout changes.
STORE_FORMAT = 1

#: Default size bound applied by ``python -m repro store gc`` when no
#: explicit ``--max-bytes`` is given.
DEFAULT_GC_MAX_BYTES = 512 * 1024 * 1024

#: Tenant namespace for artifacts outside any ``tenants/<name>/`` tree.
SHARED_TENANT = "shared"

#: Age below which a ``*.tmp`` file is presumed to belong to a live writer
#: and is left alone by the GC sweep.  The mkstemp -> replace window is
#: milliseconds; anything older is a crashed writer's dropping.
TMP_STALE_SECONDS = 300.0

_ENV_ROOT = "REPRO_STORE_DIR"
_ENV_DISABLE = "REPRO_STORE_DISABLE"

_TENANT_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")

_COUNTER_KEYS = ("hits", "misses", "writes", "errors", "evictions")


class StoreError(RuntimeError):
    """Raised for unusable store roots (not for per-record corruption)."""


def schema_version() -> str:
    """The composite schema version governing the active artifact tree."""
    from repro.atpg.guidance import GUIDANCE_FORMAT_VERSION
    from repro.equivalence.explicit import STG_FORMAT_VERSION
    from repro.equivalence.reach import REACH_FORMAT_VERSION
    from repro.simulation.backends import WORDPLANE_VERSION
    from repro.simulation.codegen import CODEGEN_VERSION
    from repro.simulation.dual_codegen import DUAL_CODEGEN_VERSION
    from repro.simulation.vector_codegen import VECTOR_CODEGEN_VERSION

    return (
        f"{STORE_FORMAT}.{DIGEST_VERSION}.{CODEGEN_VERSION}"
        f".{VECTOR_CODEGEN_VERSION}.{DUAL_CODEGEN_VERSION}.{STG_FORMAT_VERSION}"
        f".{WORDPLANE_VERSION}.{REACH_FORMAT_VERSION}.{GUIDANCE_FORMAT_VERSION}"
    )


def default_root() -> str:
    override = os.environ.get(_ENV_ROOT)
    if override:
        return override
    return os.path.join(os.path.expanduser("~"), ".cache", "repro-store")


def store_enabled() -> bool:
    """False when ``REPRO_STORE_DISABLE`` is set to a truthy value."""
    return os.environ.get(_ENV_DISABLE, "") not in ("1", "true", "yes")


def _payload_sha(payload: object) -> str:
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass
class StoreStats:
    """Counters for one :class:`ArtifactStore` instance."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    errors: int = 0  # corrupted/unreadable records discarded on read
    evictions: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "errors": self.errors,
            "evictions": self.evictions,
        }


@dataclass
class ArtifactStore:
    """A content-addressed JSON artifact store rooted at ``root``.

    ``tenant`` selects a per-tenant namespace (``<root>/tenants/<name>/``)
    for this instance's reads, writes, journals and checkpoints; ``None``
    uses the shared tree.  Accounting and GC always cover the whole root,
    every tenant included, so one size bound governs the disk footprint.
    """

    root: str = field(default_factory=default_root)
    tenant: Optional[str] = None
    stats: StoreStats = field(default_factory=StoreStats)

    def __post_init__(self) -> None:
        self.root = os.path.abspath(os.path.expanduser(self.root))
        if self.tenant is not None and not _TENANT_RE.match(self.tenant):
            raise StoreError(f"invalid tenant name {self.tenant!r}")
        self.version_dir = os.path.join(self._tenant_root, f"v{schema_version()}")
        self._flushed = StoreStats()  # session counters already merged to disk

    # -- key & path arithmetic ---------------------------------------------

    @property
    def _tenant_root(self) -> str:
        if self.tenant is None:
            return self.root
        return os.path.join(self.root, "tenants", self.tenant)

    @staticmethod
    def key(*parts: object) -> str:
        """A stable SHA-256 key over JSON-serializable key parts."""
        canonical = json.dumps(list(parts), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def path_for(self, kind: str, key: str) -> str:
        return os.path.join(self.version_dir, kind, shard_of(key), f"{key}.json")

    @property
    def journal_dir(self) -> str:
        return os.path.join(self._tenant_root, "journals")

    @property
    def jobs_index_path(self) -> str:
        """The service's persistent job index for this tenant namespace
        (version-independent, like journals: jobs outlive schema bumps)."""
        return os.path.join(self._tenant_root, "jobs-index.jsonl")

    @property
    def checkpoint_dir(self) -> str:
        return os.path.join(self.version_dir, "checkpoints")

    def checkpoint_path(self, key: str) -> str:
        return os.path.join(self.checkpoint_dir, f"{key}.jsonl")

    @staticmethod
    def shard_of_path(path: str) -> str:
        """The shard (two-hex-char directory) an artifact path lives in."""
        return os.path.basename(os.path.dirname(path))

    def tenant_of_path(self, path: str) -> str:
        """The tenant namespace an artifact path belongs to."""
        rel = os.path.relpath(os.path.abspath(path), self.root)
        parts = rel.split(os.sep)
        if len(parts) >= 2 and parts[0] == "tenants":
            return parts[1]
        return SHARED_TENANT

    # -- record I/O ---------------------------------------------------------

    def get(
        self,
        kind: str,
        key: str,
        pin: Optional[Callable[[str], None]] = None,
    ) -> Optional[dict]:
        """The payload stored under ``(kind, key)``, or ``None`` on miss.

        Corrupted, truncated or wrapper-mismatched records are deleted
        best-effort and reported as misses, so callers always recompute
        rather than trusting damaged data.

        ``pin``, when given, is called with the record's root-relative path
        *while the shard lock is still held* -- recording a journal pin
        there makes the read-and-pin atomic with respect to a concurrent
        GC, which re-reads pins inside the same lock before evicting.
        """
        path = self.path_for(kind, key)
        with shard_lock(self.root, shard_of(key)):
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    record = json.load(handle)
            except FileNotFoundError:
                self.stats.misses += 1
                return None
            except (OSError, json.JSONDecodeError, UnicodeDecodeError):
                self._discard(path)
                return None
            if (
                not isinstance(record, dict)
                or record.get("kind") != kind
                or record.get("key") != key
                or record.get("schema") != schema_version()
                or "payload" not in record
                or record.get("sha256") != _payload_sha(record["payload"])
            ):
                self._discard(path)
                return None
            self.stats.hits += 1
            # Refresh the access time: GC evicts least-recently-used first.
            try:
                os.utime(path, None)
            except OSError:
                pass
            if pin is not None:
                pin(os.path.relpath(path, self.root))
        return record["payload"]

    def put(
        self,
        kind: str,
        key: str,
        payload: dict,
        pin: Optional[Callable[[str], None]] = None,
    ) -> str:
        """Atomically persist ``payload`` under ``(kind, key)``; returns the
        record path (relative to the store root, the form journals pin).
        ``pin`` is called with that path inside the shard lock, like
        :meth:`get`'s, so a fresh write cannot be evicted before its
        journal reference lands."""
        path = self.path_for(kind, key)
        directory = os.path.dirname(path)
        record = {
            "kind": kind,
            "key": key,
            "schema": schema_version(),
            "created": time.time(),
            "sha256": _payload_sha(payload),
            "payload": payload,
        }
        rel = os.path.relpath(path, self.root)
        with shard_lock(self.root, shard_of(key)):
            # A concurrent GC may prune the (momentarily empty) shard
            # directory between our makedirs and mkstemp; recreate and
            # retry once.  With the tmp file in place the directory is
            # non-empty, so it cannot vanish again before the replace.
            while True:
                os.makedirs(directory, exist_ok=True)
                try:
                    fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
                    break
                except FileNotFoundError:
                    continue
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(record, handle, separators=(",", ":"))
                os.replace(tmp_path, path)
            except BaseException:
                try:
                    os.unlink(tmp_path)
                except OSError:
                    pass
                raise
            self.stats.writes += 1
            if pin is not None:
                pin(rel)
        return rel

    def _discard(self, path: str) -> None:
        self.stats.errors += 1
        self.stats.misses += 1
        try:
            os.unlink(path)
        except OSError:
            pass

    # -- accounting & maintenance ------------------------------------------

    def _version_trees(self) -> List[str]:
        """Every ``v*`` artifact tree under the root, all tenants included."""
        trees: List[str] = []
        if not os.path.isdir(self.root):
            return trees
        roots = [self.root]
        tenants_dir = os.path.join(self.root, "tenants")
        if os.path.isdir(tenants_dir):
            for name in sorted(os.listdir(tenants_dir)):
                candidate = os.path.join(tenants_dir, name)
                if os.path.isdir(candidate):
                    roots.append(candidate)
        for base in roots:
            for entry in sorted(os.listdir(base)):
                if entry.startswith("v") and os.path.isdir(os.path.join(base, entry)):
                    trees.append(os.path.join(base, entry))
        return trees

    def artifact_files(self) -> List[str]:
        """Absolute paths of every artifact record, any schema or tenant."""
        files: List[str] = []
        for tree in self._version_trees():
            for dirpath, _dirnames, filenames in os.walk(tree):
                if os.path.basename(dirpath) == "checkpoints":
                    continue
                for filename in sorted(filenames):
                    if filename.endswith(".json"):
                        files.append(os.path.join(dirpath, filename))
        return files

    def journal_dirs(self) -> List[str]:
        """Every journal directory under the root (shared plus tenants)."""
        dirs = [os.path.join(self.root, "journals")]
        tenants_dir = os.path.join(self.root, "tenants")
        if os.path.isdir(tenants_dir):
            for name in sorted(os.listdir(tenants_dir)):
                dirs.append(os.path.join(tenants_dir, name, "journals"))
        return [d for d in dirs if os.path.isdir(d)] or dirs[:1]

    def size_bytes(self) -> int:
        total = 0
        for path in self.artifact_files():
            try:
                total += os.path.getsize(path)
            except OSError:
                pass
        return total

    def summary(self) -> Dict[str, object]:
        """Headline store state for the ``store stats`` CLI."""
        files = self.artifact_files()
        by_kind: Dict[str, int] = {}
        by_shard: Dict[str, Dict[str, int]] = {}
        by_tenant: Dict[str, Dict[str, int]] = {}
        total = 0
        for path in files:
            try:
                size = os.path.getsize(path)
            except OSError:
                size = 0
            total += size
            kind = os.path.basename(os.path.dirname(os.path.dirname(path)))
            by_kind[kind] = by_kind.get(kind, 0) + 1
            shard = self.shard_of_path(path)
            cell = by_shard.setdefault(shard, {"artifacts": 0, "bytes": 0})
            cell["artifacts"] += 1
            cell["bytes"] += size
            tenant = self.tenant_of_path(path)
            cell = by_tenant.setdefault(tenant, {"artifacts": 0, "bytes": 0})
            cell["artifacts"] += 1
            cell["bytes"] += size
        return {
            "root": self.root,
            "tenant": self.tenant or SHARED_TENANT,
            "schema": schema_version(),
            "artifacts": len(files),
            "bytes": total,
            "by_kind": dict(sorted(by_kind.items())),
            "by_shard": dict(sorted(by_shard.items())),
            "by_tenant": dict(sorted(by_tenant.items())),
            "session": self.stats.as_dict(),
            "lifetime": self.lifetime_counters(),
        }

    # -- persistent counters -------------------------------------------------

    @property
    def _counters_path(self) -> str:
        return os.path.join(self.root, "counters.json")

    def _read_counters(self) -> Dict[str, int]:
        try:
            with open(self._counters_path, "r", encoding="utf-8") as handle:
                raw = json.load(handle)
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return {key: 0 for key in _COUNTER_KEYS}
        return {key: int(raw.get(key, 0)) for key in _COUNTER_KEYS}

    def flush_counters(self) -> Dict[str, int]:
        """Merge this session's counter deltas into ``counters.json``.

        Safe against concurrent flushers (read-modify-write happens under
        the counters lock, the write is atomic) and idempotent: deltas
        already merged are not merged twice.  Returns the merged totals.
        """
        session = self.stats.as_dict()
        flushed = self._flushed.as_dict()
        delta = {key: session[key] - flushed[key] for key in _COUNTER_KEYS}
        with counters_lock(self.root):
            totals = self._read_counters()
            if any(delta.values()):
                for key in _COUNTER_KEYS:
                    totals[key] += delta[key]
                fd, tmp_path = tempfile.mkstemp(
                    dir=self.root, suffix=".counters.tmp"
                )
                try:
                    with os.fdopen(fd, "w", encoding="utf-8") as handle:
                        json.dump(totals, handle, sort_keys=True)
                    os.replace(tmp_path, self._counters_path)
                except BaseException:
                    try:
                        os.unlink(tmp_path)
                    except OSError:
                        pass
                    raise
        self._flushed = StoreStats(**session)
        return totals

    def lifetime_counters(self) -> Dict[str, int]:
        """Persisted counters plus this session's not-yet-flushed deltas."""
        totals = self._read_counters()
        session = self.stats.as_dict()
        flushed = self._flushed.as_dict()
        for key in _COUNTER_KEYS:
            totals[key] += session[key] - flushed[key]
        return totals

    # -- garbage collection --------------------------------------------------

    def _pinned_now(self, extra: Iterable[str] = ()) -> Set[str]:
        """Absolute paths pinned right now: journals (all tenants) + extra."""
        from repro.store.journal import journal_pinned_paths

        pinned = {
            path if os.path.isabs(path) else os.path.join(self.root, path)
            for path in extra
        }
        for directory in self.journal_dirs():
            for rel in journal_pinned_paths(directory):
                pinned.add(
                    rel if os.path.isabs(rel) else os.path.join(self.root, rel)
                )
        return {os.path.abspath(path) for path in pinned}

    def _evict_lru(
        self,
        entries: Sequence[Tuple[float, int, str]],
        over_budget: Callable[[], bool],
        freed: Callable[[int], None],
        pinned_extra: Iterable[str],
    ) -> Tuple[int, int]:
        """Evict ``entries`` (LRU order) while ``over_budget()`` holds.

        Takes the shard lock across *pin re-read + unlink*: the journal
        pins are re-read from disk on every shard change, inside the lock,
        so a pin recorded after the caller's scan is still honoured.
        Records touched since the scan (newer mtime) are treated as hot
        and skipped.  Returns ``(evicted, skipped_pinned)``.
        """
        evicted = 0
        skipped_pinned = 0
        lock = None
        lock_shard = None
        pinned: Set[str] = set()
        pinned_extra = list(pinned_extra)
        try:
            for mtime, size, path in entries:
                if not over_budget():
                    break
                shard = self.shard_of_path(path)
                if lock is None or shard != lock_shard:
                    if lock is not None:
                        lock.release()
                    lock = shard_lock(self.root, shard)
                    lock.acquire()
                    lock_shard = shard
                    pinned = self._pinned_now(pinned_extra)
                try:
                    stat = os.stat(path)
                except OSError:
                    continue  # a concurrent GC or discard got there first
                if stat.st_mtime > mtime:
                    continue  # accessed or rewritten since the scan: hot
                if os.path.abspath(path) in pinned:
                    skipped_pinned += 1
                    continue
                try:
                    os.unlink(path)
                except OSError:
                    continue
                evicted += 1
                freed(size)
        finally:
            if lock is not None:
                lock.release()
        return evicted, skipped_pinned

    def gc(
        self,
        max_bytes: Optional[int] = None,
        pinned: Iterable[str] = (),
        tenant_max_bytes: Optional[int] = None,
    ) -> Dict[str, object]:
        """Evict least-recently-used artifacts until the store fits.

        Journal-pinned paths -- re-read *inside* each shard lock, so pins
        recorded while the GC runs are honoured -- are never evicted: an
        artifact referenced by a live run journal must survive so the
        journal stays replayable.  Explicit ``pinned`` paths (absolute or
        root-relative) are added to that set.  ``tenant_max_bytes``
        additionally bounds each tenant namespace (the shared tree
        included) before the global ``max_bytes`` pass, so one noisy
        tenant cannot evict everyone else's artifacts.  Stale ``*.tmp``
        droppings from crashed writers are always removed.
        """
        if max_bytes is None:
            max_bytes = DEFAULT_GC_MAX_BYTES
        pinned = list(pinned)
        removed_tmp = 0
        stale_before = time.time() - TMP_STALE_SECONDS
        if os.path.isdir(self.root):
            for dirpath, _dirnames, filenames in os.walk(self.root):
                for filename in filenames:
                    if not filename.endswith(".tmp"):
                        continue
                    tmp_path = os.path.join(dirpath, filename)
                    try:
                        # Only crashed writers' droppings: a live writer's
                        # tempfile (milliseconds old) must survive the sweep.
                        if os.stat(tmp_path).st_mtime < stale_before:
                            os.unlink(tmp_path)
                            removed_tmp += 1
                    except OSError:
                        pass
        entries: List[Tuple[float, int, str]] = []
        totals = {"all": 0}
        tenant_totals: Dict[str, int] = {}
        for path in self.artifact_files():
            try:
                stat = os.stat(path)
            except OSError:
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
            totals["all"] += stat.st_size
            tenant = self.tenant_of_path(path)
            tenant_totals[tenant] = tenant_totals.get(tenant, 0) + stat.st_size
        entries.sort()
        before = totals["all"]
        evicted = 0
        skipped_pinned = 0
        tenant_evicted: Dict[str, int] = {}

        if tenant_max_bytes is not None:
            for tenant in sorted(tenant_totals):
                if tenant_totals[tenant] <= tenant_max_bytes:
                    continue
                tenant_entries = [
                    entry for entry in entries if self.tenant_of_path(entry[2]) == tenant
                ]

                def freed(size: int, tenant: str = tenant) -> None:
                    tenant_totals[tenant] -= size
                    totals["all"] -= size

                count, skipped = self._evict_lru(
                    tenant_entries,
                    lambda tenant=tenant: tenant_totals[tenant] > tenant_max_bytes,
                    freed,
                    pinned,
                )
                evicted += count
                skipped_pinned += skipped
                if count:
                    tenant_evicted[tenant] = count

        if totals["all"] > max_bytes:
            live = [entry for entry in entries if os.path.exists(entry[2])]

            def freed_global(size: int) -> None:
                totals["all"] -= size

            count, skipped = self._evict_lru(
                live, lambda: totals["all"] > max_bytes, freed_global, pinned
            )
            evicted += count
            skipped_pinned += skipped

        self.stats.evictions += evicted
        self._prune_empty_dirs()
        return {
            "before_bytes": before,
            "after_bytes": totals["all"],
            "max_bytes": max_bytes,
            "tenant_max_bytes": tenant_max_bytes,
            "evicted": evicted,
            "tenant_evicted": tenant_evicted,
            "skipped_pinned": skipped_pinned,
            "removed_tmp": removed_tmp,
        }

    def clear(self) -> int:
        """Delete every artifact record (journals and checkpoints stay)."""
        removed = 0
        for path in self.artifact_files():
            try:
                os.unlink(path)
                removed += 1
            except OSError:
                pass
        self._prune_empty_dirs()
        return removed

    def _prune_empty_dirs(self) -> None:
        if not os.path.isdir(self.root):
            return
        for dirpath, dirnames, filenames in os.walk(self.root, topdown=False):
            if dirpath == self.root or dirnames or filenames:
                continue
            try:
                os.rmdir(dirpath)
            except OSError:
                pass


_DEFAULT_STORE: Optional[ArtifactStore] = None


def default_store() -> Optional[ArtifactStore]:
    """The process-wide store singleton, or ``None`` when disabled.

    Created lazily from ``REPRO_STORE_DIR``/``~/.cache/repro-store``;
    ``REPRO_STORE_DISABLE=1`` turns it off globally (useful in tests and
    hermetic builds).
    """
    global _DEFAULT_STORE
    if not store_enabled():
        return None
    if _DEFAULT_STORE is None:
        _DEFAULT_STORE = ArtifactStore()
    return _DEFAULT_STORE


def set_default_store(store: Optional[ArtifactStore]) -> None:
    """Override (or reset, with ``None``) the process-wide store."""
    global _DEFAULT_STORE
    _DEFAULT_STORE = store


__all__ = [
    "ArtifactStore",
    "StoreError",
    "StoreStats",
    "DEFAULT_GC_MAX_BYTES",
    "SHARED_TENANT",
    "STORE_FORMAT",
    "default_root",
    "default_store",
    "schema_version",
    "set_default_store",
    "store_enabled",
]
