"""Structured JSONL run journal.

One journal file per run, under ``<store-root>/journals/``.  Every line is
one JSON event with a wall-clock timestamp; the vocabulary is small:

* ``run_start`` / ``run_end`` -- run boundaries with free-form metadata;
* ``stage_start`` / ``stage_end`` -- pipeline stage boundaries.  The end
  event carries wall seconds, CPU seconds (``time.process_time`` delta),
  the stage's cache disposition (``hit`` / ``miss`` / ``off``) and the
  store key involved, which makes the journal the observability layer the
  benchmarks read back;
* ``artifact_ref`` -- a store record (path relative to the store root)
  this run read or wrote.  :func:`journal_pinned_paths` aggregates these
  across the journal directory, and the store GC refuses to evict a
  referenced artifact while its journal is still present -- a live journal
  keeps its evidence replayable.

Events are flushed per line, so a killed run leaves a readable journal up
to the moment of death (the same property the ATPG checkpoint relies on).
Writes are serialized by an internal lock, so a journal shared between the
service's event loop and its worker threads never interleaves two events
on one line; :func:`tail_journal` incrementally reads complete lines from
a given offset, which is how the server streams a run's progress as NDJSON
while the run is still writing.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Dict, Iterator, List, Optional, Set, Tuple


class RunJournal:
    """An append-only JSONL event log for one run."""

    def __init__(self, path: str):
        self.path = os.path.abspath(path)
        os.makedirs(os.path.dirname(self.path) or ".", exist_ok=True)
        self._handle = open(self.path, "a", encoding="utf-8")
        self._lock = threading.Lock()

    @classmethod
    def create(cls, directory: str, label: str) -> "RunJournal":
        """A fresh journal named after the label, timestamp and pid (unique
        per run even when several runs share a second)."""
        stamp = time.strftime("%Y%m%dT%H%M%S")
        safe = "".join(c if c.isalnum() or c in "._-" else "_" for c in label)
        return cls(os.path.join(directory, f"{stamp}-{safe}-{os.getpid()}.jsonl"))

    def event(self, event: str, **fields: object) -> None:
        record: Dict[str, object] = {"t": round(time.time(), 6), "event": event}
        record.update(fields)
        line = json.dumps(record, sort_keys=True) + "\n"
        with self._lock:
            self._handle.write(line)
            self._handle.flush()

    def artifact_ref(self, path: Optional[str]) -> None:
        """Pin one store record (path relative to the store root)."""
        if path:
            self.event("artifact_ref", path=path)

    def close(self, **fields: object) -> None:
        if not self._handle.closed:
            self.event("run_end", **fields)
            with self._lock:
                self._handle.close()

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(ok=exc_type is None)


def read_journal(path: str) -> Iterator[Dict[str, object]]:
    """Parse a journal, silently dropping a truncated trailing line."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn write at the kill point
                if isinstance(record, dict):
                    yield record
    except OSError:
        return


def tail_journal(path: str, offset: int = 0) -> Tuple[List[Dict[str, object]], int]:
    """Complete events appended past ``offset``; returns ``(events, new_offset)``.

    Only whole lines (newline-terminated) are consumed, so a concurrent
    writer mid-line just defers that event to the next call; the returned
    offset always points at the start of the first unconsumed byte.  A
    missing file reads as no events at offset ``offset``.
    """
    events: List[Dict[str, object]] = []
    try:
        with open(path, "rb") as handle:
            handle.seek(offset)
            chunk = handle.read()
    except OSError:
        return events, offset
    end = chunk.rfind(b"\n")
    if end < 0:
        return events, offset
    complete = chunk[: end + 1]
    for line in complete.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError):
            continue
        if isinstance(record, dict):
            events.append(record)
    return events, offset + len(complete)


def journal_pinned_paths(journal_dir: str) -> Set[str]:
    """Store-relative artifact paths referenced by any journal on disk."""
    pinned: Set[str] = set()
    if not os.path.isdir(journal_dir):
        return pinned
    for name in sorted(os.listdir(journal_dir)):
        if not name.endswith(".jsonl"):
            continue
        for record in read_journal(os.path.join(journal_dir, name)):
            if record.get("event") == "artifact_ref" and record.get("path"):
                pinned.add(str(record["path"]))
    return pinned


def journal_stage_summaries(path: str) -> List[Dict[str, object]]:
    """The ``stage_end`` events of one journal, in order (benchmark meta)."""
    return [r for r in read_journal(path) if r.get("event") == "stage_end"]


__all__ = [
    "RunJournal",
    "journal_pinned_paths",
    "journal_stage_summaries",
    "read_journal",
    "tail_journal",
]
