"""Multiprocess orchestration of the deterministic PODEM phase.

Sequential PODEM is embarrassingly parallel across target faults: each
:meth:`~repro.atpg.podem.PodemEngine.generate` call depends only on the
circuit, the fault and the budget, never on the outcome of other targets.
This module partitions the post-random fault list across a
``ProcessPoolExecutor``:

* **one engine per process** -- the circuit is shipped once per worker via
  the pool initializer (a plain pickle; :meth:`Circuit.__getstate__` drops
  the compile-cache entry, and the initializer re-warms the per-process
  cache with :func:`repro.simulation.cache.warm_compile_cache` before
  building its :class:`PodemEngine`);
* **chunked distribution** -- the fault list is split into several chunks
  per worker so a run of hard (abort-bound) faults does not serialize the
  pool behind one process;
* **shared wall-clock budget** -- the parent's remaining seconds at pool
  creation become a worker-local deadline; every chunk and every targeted
  fault is metered against it, so the pool as a whole never outspends the
  budget a serial run would get.  A fault reached after the deadline is
  returned ``attempted=False`` and the caller records it as budget-aborted
  -- unprocessed faults are never silently dropped.

Workers return raw :class:`FaultOutcome` records; collateral-detection
reconciliation happens on the *parent* (see ``repro.atpg.engine``), which
replays the returned sequences in fault-queue order through the
bit-parallel fault simulator against the global remaining list.  Replaying
in queue order makes the detected/aborted partition and the emitted test
set bit-for-bit identical to the serial path whenever the wall-clock
limits are not binding: PODEM itself is deterministic, so the only
engine-visible difference parallelism could introduce -- which collateral
detections suppress which targeted sequences -- is resolved exactly as the
serial loop would have resolved it.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.atpg.budget import AtpgBudget, EffortMeter
from repro.atpg.podem import PodemEngine
from repro.circuit.netlist import Circuit
from repro.faults.model import StuckAtFault
from repro.logic.three_valued import Trit
from repro.simulation.cache import warm_compile_cache

# Several chunks per worker: small enough that an abort-heavy stretch of the
# fault list spreads across the pool, large enough to amortize the dispatch.
CHUNKS_PER_WORKER = 4


@dataclass
class FaultOutcome:
    """What one PODEM attempt produced for one targeted fault.

    ``attempted`` is False when the shared budget expired before the fault
    was targeted at all (the parent classifies these as budget aborts).
    The simulation counters mirror :class:`~repro.atpg.budget.EffortMeter`
    so pool workers can report their kernel effort back to the parent.
    """

    detected: bool
    sequence: Optional[List[Tuple[Trit, ...]]]
    backtracks: int
    aborted: bool
    attempted: bool = True
    simulations: int = 0
    frames_simulated: int = 0
    lanes_evaluated: int = 0


def default_workers() -> int:
    """Pool size when the caller asked for the process engine without a
    worker count: one per core, capped at 4 (PODEM saturates memory
    bandwidth well before wide pools pay off on small circuits)."""
    return max(1, min(4, os.cpu_count() or 1))


def _start_method() -> str:
    """``fork`` where the platform offers it (cheap, and the parent's warm
    compile cache is inherited copy-on-write); ``spawn`` otherwise."""
    return "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"


# Per-process worker state, populated by the pool initializer.
_WORKER_STATE: Dict[str, object] = {}


def _worker_init(
    circuit: Circuit,
    budget: AtpgBudget,
    pool_seconds: float,
    kernel: str = "dual",
    backend: str = "auto",
) -> None:
    warm_compile_cache(circuit)
    _WORKER_STATE["engine"] = PodemEngine(circuit, kernel=kernel, backend=backend)
    _WORKER_STATE["budget"] = budget
    # The parent's remaining wall-clock allowance, anchored to this
    # process's own monotonic clock the moment the worker starts.
    _WORKER_STATE["deadline"] = time.perf_counter() + pool_seconds


def _worker_chunk(
    payload: Tuple[Sequence[StuckAtFault], int]
) -> List[FaultOutcome]:
    faults, max_frames = payload
    engine: PodemEngine = _WORKER_STATE["engine"]
    budget: AtpgBudget = _WORKER_STATE["budget"]
    deadline: float = _WORKER_STATE["deadline"]
    outcomes: List[FaultOutcome] = []
    for fault in faults:
        now = time.perf_counter()
        if now >= deadline:
            outcomes.append(
                FaultOutcome(False, None, 0, aborted=True, attempted=False)
            )
            continue
        meter = EffortMeter(budget, cap_seconds=deadline - now)
        result = engine.generate(
            fault,
            meter,
            max_frames=max_frames,
            deadline=min(deadline, now + budget.seconds_per_fault),
        )
        outcomes.append(
            FaultOutcome(
                result.detected,
                result.sequence,
                result.backtracks,
                result.aborted,
                simulations=meter.simulations,
                frames_simulated=meter.frames_simulated,
                lanes_evaluated=meter.lanes_evaluated,
            )
        )
    return outcomes


def iter_podem_partitioned(
    circuit: Circuit,
    faults: Sequence[StuckAtFault],
    budget: AtpgBudget,
    max_frames: int,
    workers: int,
    pool_seconds: float,
    kernel: str = "dual",
    backend: str = "auto",
) -> Iterator[Tuple[StuckAtFault, FaultOutcome]]:
    """PODEM every fault on a ``workers``-wide process pool, **streaming**.

    Yields ``(fault, outcome)`` pairs strictly in input order as chunks
    complete: all chunks run concurrently, but a pair is released only once
    every earlier chunk has been consumed, so the caller can absorb -- and
    checkpoint -- each outcome incrementally without ever seeing results
    out of queue order.  Wall-clock-wise this is free: in-order consumption
    only ever *waits* on the earliest unfinished chunk, which an
    ``as_completed`` collector would have had to wait for anyway before
    returning.  ``pool_seconds`` is the shared wall-clock allowance for the
    whole pool (the parent meter's remaining budget).
    """
    if not faults:
        return
    workers = max(1, workers)
    chunk_size = max(1, -(-len(faults) // (workers * CHUNKS_PER_WORKER)))
    chunks = [
        list(faults[index : index + chunk_size])
        for index in range(0, len(faults), chunk_size)
    ]
    context = multiprocessing.get_context(_start_method())
    with ProcessPoolExecutor(
        max_workers=min(workers, len(chunks)),
        mp_context=context,
        initializer=_worker_init,
        initargs=(circuit, budget, pool_seconds, kernel, backend),
    ) as pool:
        futures = [
            pool.submit(_worker_chunk, (chunk, max_frames)) for chunk in chunks
        ]
        for chunk, future in zip(chunks, futures):
            for fault, outcome in zip(chunk, future.result()):
                yield fault, outcome


def podem_partitioned(
    circuit: Circuit,
    faults: Sequence[StuckAtFault],
    budget: AtpgBudget,
    max_frames: int,
    workers: int,
    pool_seconds: float,
    kernel: str = "dual",
    backend: str = "auto",
) -> List[FaultOutcome]:
    """PODEM every fault on a ``workers``-wide process pool.

    Returns one :class:`FaultOutcome` per fault, **in input order**
    regardless of completion order -- the caller's queue-order replay
    depends on it.  ``pool_seconds`` is the shared wall-clock allowance for
    the whole pool (the parent meter's remaining budget).
    """
    return [
        outcome
        for _fault, outcome in iter_podem_partitioned(
            circuit, faults, budget, max_frames, workers, pool_seconds, kernel, backend
        )
    ]


__all__ = [
    "FaultOutcome",
    "iter_podem_partitioned",
    "podem_partitioned",
    "default_workers",
    "CHUNKS_PER_WORKER",
]
