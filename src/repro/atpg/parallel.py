"""Multiprocess orchestration of the deterministic PODEM phase.

Sequential PODEM is embarrassingly parallel across target faults: each
:meth:`~repro.atpg.podem.PodemEngine.generate` call depends only on the
circuit, the fault and the budget, never on the outcome of other targets.
This module partitions the post-random fault list across a
``ProcessPoolExecutor``:

* **one engine per process** -- the circuit is shipped once per worker via
  the pool initializer (a plain pickle; :meth:`Circuit.__getstate__` drops
  the compile-cache entry, and the initializer re-warms the per-process
  cache with :func:`repro.simulation.cache.warm_compile_cache` before
  building its :class:`PodemEngine`);
* **chunked distribution** -- the fault list is split into several chunks
  per worker so a run of hard (abort-bound) faults does not serialize the
  pool behind one process;
* **shared wall-clock budget** -- the parent's remaining seconds at pool
  creation become a worker-local deadline; every chunk and every targeted
  fault is metered against it, so the pool as a whole never outspends the
  budget a serial run would get.  A fault reached after the deadline is
  returned ``attempted=False`` and the caller records it as budget-aborted
  -- unprocessed faults are never silently dropped.

Workers return raw :class:`FaultOutcome` records; collateral-detection
reconciliation happens on the *parent* (see ``repro.atpg.engine``), which
replays the returned sequences in fault-queue order through the
bit-parallel fault simulator against the global remaining list.  Replaying
in queue order makes the detected/aborted partition and the emitted test
set bit-for-bit identical to the serial path whenever the wall-clock
limits are not binding: PODEM itself is deterministic, so the only
engine-visible difference parallelism could introduce -- which collateral
detections suppress which targeted sequences -- is resolved exactly as the
serial loop would have resolved it.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.atpg.budget import AtpgBudget, EffortMeter
from repro.atpg.podem import PodemEngine
from repro.circuit.netlist import Circuit
from repro.faults.model import StuckAtFault
from repro.logic.three_valued import Trit
from repro.simulation.cache import warm_compile_cache

# Several chunks per worker: small enough that an abort-heavy stretch of the
# fault list spreads across the pool, large enough to amortize the dispatch.
CHUNKS_PER_WORKER = 4


@dataclass
class FaultOutcome:
    """What one PODEM attempt produced for one targeted fault.

    ``attempted`` is False when the shared budget expired before the fault
    was targeted at all (the parent classifies these as budget aborts).
    The simulation counters mirror :class:`~repro.atpg.budget.EffortMeter`
    so pool workers can report their kernel effort back to the parent.
    """

    detected: bool
    sequence: Optional[List[Tuple[Trit, ...]]]
    backtracks: int
    aborted: bool
    attempted: bool = True
    simulations: int = 0
    frames_simulated: int = 0
    lanes_evaluated: int = 0
    seconds: float = 0.0
    objective_choices: int = 0


def default_workers() -> int:
    """Pool size when the caller asked for the process engine without a
    worker count: one per core, capped at 4 (PODEM saturates memory
    bandwidth well before wide pools pay off on small circuits)."""
    return max(1, min(4, os.cpu_count() or 1))


def _start_method() -> str:
    """``fork`` where the platform offers it (cheap, and the parent's warm
    compile cache is inherited copy-on-write); ``spawn`` otherwise."""
    return "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"


# Per-process worker state, populated by the pool initializer.
_WORKER_STATE: Dict[str, object] = {}


def _worker_init(
    circuit: Circuit,
    budget: AtpgBudget,
    pool_seconds: float,
    kernel: str = "dual",
    backend: str = "auto",
    guidance=None,
) -> None:
    warm_compile_cache(circuit)
    _WORKER_STATE["engine"] = PodemEngine(
        circuit, kernel=kernel, backend=backend, guidance=guidance
    )
    _WORKER_STATE["budget"] = budget
    # The parent's remaining wall-clock allowance, anchored to this
    # process's own monotonic clock the moment the worker starts.
    _WORKER_STATE["deadline"] = time.perf_counter() + pool_seconds


def _worker_chunk(
    payload: Tuple[Sequence[StuckAtFault], int]
) -> List[FaultOutcome]:
    faults, max_frames = payload
    engine: PodemEngine = _WORKER_STATE["engine"]
    budget: AtpgBudget = _WORKER_STATE["budget"]
    deadline: float = _WORKER_STATE["deadline"]
    outcomes: List[FaultOutcome] = []
    for fault in faults:
        now = time.perf_counter()
        if now >= deadline:
            outcomes.append(
                FaultOutcome(False, None, 0, aborted=True, attempted=False)
            )
            continue
        meter = EffortMeter(budget, cap_seconds=deadline - now)
        result = engine.generate(
            fault,
            meter,
            max_frames=max_frames,
            deadline=min(deadline, now + budget.seconds_per_fault),
        )
        # generate() flushed exactly one effort row for this attempt; its
        # timing/objective deltas ride home on the outcome so the parent
        # can rebuild the per-fault training rows without a second channel.
        row = meter.fault_rows[-1]
        outcomes.append(
            FaultOutcome(
                result.detected,
                result.sequence,
                result.backtracks,
                result.aborted,
                simulations=meter.simulations,
                frames_simulated=meter.frames_simulated,
                lanes_evaluated=meter.lanes_evaluated,
                seconds=row.seconds,
                objective_choices=row.objective_choices,
            )
        )
    return outcomes


def _partition_indices(
    count: int, num_chunks: int, costs: Optional[Sequence[float]]
) -> List[List[int]]:
    """Fault indices per chunk.

    Without costs: contiguous slices (the seed behavior, preserved
    verbatim for the unguided path).  With costs: longest-processing-time
    bin packing -- faults are assigned in descending predicted-cost order
    to the least-loaded chunk, so one run of hard faults spreads across
    the pool instead of serializing it behind one worker.  All ties break
    on index, making the partition a pure function of the inputs.
    """
    if costs is None:
        chunk_size = max(1, -(-count // num_chunks))
        return [
            list(range(start, min(start + chunk_size, count)))
            for start in range(0, count, chunk_size)
        ]
    num_chunks = max(1, min(num_chunks, count))
    bins: List[List[int]] = [[] for _ in range(num_chunks)]
    loads = [0.0] * num_chunks
    for index in sorted(range(count), key=lambda i: (-costs[i], i)):
        target = min(range(num_chunks), key=lambda b: (loads[b], b))
        bins[target].append(index)
        loads[target] += costs[index]
    # Within a chunk the worker processes faults in queue order, keeping
    # per-fault deadlines aligned with the parent's in-order consumption.
    for chunk in bins:
        chunk.sort()
    return [chunk for chunk in bins if chunk]


def iter_podem_partitioned(
    circuit: Circuit,
    faults: Sequence[StuckAtFault],
    budget: AtpgBudget,
    max_frames: int,
    workers: int,
    pool_seconds: float,
    kernel: str = "dual",
    backend: str = "auto",
    guidance=None,
    costs: Optional[Sequence[float]] = None,
) -> Iterator[Tuple[StuckAtFault, FaultOutcome]]:
    """PODEM every fault on a ``workers``-wide process pool, **streaming**.

    Yields ``(fault, outcome)`` pairs strictly in input order as chunks
    complete: all chunks run concurrently, but a pair is released only once
    every earlier chunk has been consumed, so the caller can absorb -- and
    checkpoint -- each outcome incrementally without ever seeing results
    out of queue order.  Wall-clock-wise this is free: in-order consumption
    only ever *waits* on the earliest unfinished chunk, which an
    ``as_completed`` collector would have had to wait for anyway before
    returning.  ``pool_seconds`` is the shared wall-clock allowance for the
    whole pool (the parent meter's remaining budget).

    ``guidance`` (a :class:`~repro.atpg.guidance.GuidancePolicy`) ships to
    every worker's engine; ``costs`` (per-fault predicted effort, aligned
    with ``faults``) switches the partition from contiguous index chunks
    to predicted-cost load balancing -- the yield order is unaffected.
    """
    if not faults:
        return
    workers = max(1, workers)
    index_chunks = _partition_indices(
        len(faults), workers * CHUNKS_PER_WORKER, costs
    )
    chunks = [[faults[i] for i in chunk] for chunk in index_chunks]
    # Where each fault landed, so balanced (non-contiguous) partitions can
    # still be drained strictly in input order.
    placement: Dict[int, Tuple[int, int]] = {}
    for chunk_id, chunk in enumerate(index_chunks):
        for position, index in enumerate(chunk):
            placement[index] = (chunk_id, position)
    context = multiprocessing.get_context(_start_method())
    with ProcessPoolExecutor(
        max_workers=min(workers, len(chunks)),
        mp_context=context,
        initializer=_worker_init,
        initargs=(circuit, budget, pool_seconds, kernel, backend, guidance),
    ) as pool:
        futures = [
            pool.submit(_worker_chunk, (chunk, max_frames)) for chunk in chunks
        ]
        results: List[Optional[List[FaultOutcome]]] = [None] * len(chunks)
        for index in range(len(faults)):
            chunk_id, position = placement[index]
            if results[chunk_id] is None:
                results[chunk_id] = futures[chunk_id].result()
            yield faults[index], results[chunk_id][position]


def podem_partitioned(
    circuit: Circuit,
    faults: Sequence[StuckAtFault],
    budget: AtpgBudget,
    max_frames: int,
    workers: int,
    pool_seconds: float,
    kernel: str = "dual",
    backend: str = "auto",
    guidance=None,
    costs: Optional[Sequence[float]] = None,
) -> List[FaultOutcome]:
    """PODEM every fault on a ``workers``-wide process pool.

    Returns one :class:`FaultOutcome` per fault, **in input order**
    regardless of completion order -- the caller's queue-order replay
    depends on it.  ``pool_seconds`` is the shared wall-clock allowance for
    the whole pool (the parent meter's remaining budget).
    """
    return [
        outcome
        for _fault, outcome in iter_podem_partitioned(
            circuit,
            faults,
            budget,
            max_frames,
            workers,
            pool_seconds,
            kernel,
            backend,
            guidance=guidance,
            costs=costs,
        )
    ]


__all__ = [
    "FaultOutcome",
    "iter_podem_partitioned",
    "podem_partitioned",
    "default_workers",
    "CHUNKS_PER_WORKER",
]
