"""Search guidance for ATPG: SCOAP testability + a trained meta-predictor.

The deterministic PODEM phase spends its effort in two kinds of choices:
*which fault to target next* (collateral detection drops every fault a
found sequence also covers, so ordering changes total work) and *which
objective/input to backtrace* (a bad choice burns backtracks).  The seed
engine makes both choices with fixed structural heuristics; this module
supplies value-aware ones, in two tiers behind one knob:

``guidance="scoap"``
    Classic SCOAP/COP testability measures (Goldstein's controllability
    CC0/CC1 and observability CO), computed once per circuit as a monotone
    fixpoint over the cyclic graph.  Crossing a register costs
    :data:`SCOAP_REGISTER_COST` -- the sequential engine must justify
    state a frame earlier per register, so the measures are sequential-
    depth-aware, exactly like the engine's frame escalation.  Faults are
    ordered hardest-first (hard faults need deep windows; the long
    sequences they produce sweep much of the cheap tail as collateral
    detections, and they get the per-fault budget while it is fresh),
    PODEM excitation objectives become value-aware (CC0 vs CC1 instead
    of one value-blind cost), D-frontier gates are ranked by
    observability instead of raw depth, and exact register-distance
    fixpoints frame-gate the search: provably-infeasible escalation
    levels, excitation frames and frontier entries are skipped outright.

``guidance="learned"``
    A pure-python trained meta-predictor (a small deterministic ensemble
    of CART regression trees, no dependencies) on top of the SCOAP
    features plus the per-fault :class:`~repro.atpg.budget.EffortMeter`
    counters logged by earlier runs.  The predictor scores faults (for
    ordering and for predicted-cost pool partitioning) and candidate
    objectives (per-node value costs, precomputed once at engine setup
    so PODEM's decision loops stay table-driven).  Without a trained
    predictor the tier falls back to the SCOAP policy.

``guidance="auto"``
    ``learned`` when a persisted predictor is available in the artifact
    store, ``scoap`` otherwise.

Everything here is **deterministic**: fixpoints iterate in topological
order, every ranking sort carries an explicit ``(score, fault_key)``
tie-break, and tree training breaks split ties on (SSE, feature index,
threshold).  Guided runs therefore reproduce bit-for-bit across
processes, hosts and Python versions, which the process-pool parity
checks in ``benchmarks/perf_atpg.py`` assert.

Store integration (all keyed under :data:`GUIDANCE_FORMAT_VERSION`):

``scoap``          cached :class:`ScoapMeasures` per circuit digest;
``guidance-data``  training datasets (feature rows + effort labels)
                   logged by :class:`~repro.pipeline.flow.FlowPipeline`
                   after any fresh ATPG stage;
``predictor``      a persisted :class:`MetaPredictor`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.circuit.netlist import Circuit, LineRef
from repro.circuit.types import GateType, NodeKind
from repro.faults.model import StuckAtFault

#: Bump when the SCOAP rules, the feature schema or the predictor format
#: change; folded into the store's composite schema version.
GUIDANCE_FORMAT_VERSION = 1

#: Persisted-predictor payload format.
PREDICTOR_FORMAT_VERSION = 1

#: Valid values of the ``guidance`` knob.
GUIDANCE_MODES = ("off", "scoap", "learned", "auto")

#: SCOAP cost of crossing one register: justifying a value behind a
#: flip-flop forces the objective one time frame earlier, which the
#: engine's iterative deepening pays for with a whole extra level.
SCOAP_REGISTER_COST = 20.0

#: Saturation bound for uncontrollable / unobservable lines.
UNREACHABLE = 1.0e9

#: Feature vector layout for the meta-predictor (one row per fault).
FEATURE_NAMES = (
    "cc0_line",          # SCOAP 0-controllability of the faulted line
    "cc1_line",          # SCOAP 1-controllability of the faulted line
    "co_line",           # SCOAP observability of the faulted line
    "excite_cost",       # controllability of the *detecting* value
    "detect_cost",       # excite_cost + co_line (the ranking score)
    "regs_before",       # registers between the driving node and the line
    "regs_after",        # registers between the line and the edge's sink
    "depth",             # static distance from the driver to an output
    "fanout",            # out-degree of the driving node
    "stuck_value",       # 0 or 1
    "circuit_gates",     # workload-scale context features
    "circuit_registers",
)


def fault_sort_key(fault: StuckAtFault) -> Tuple[int, int, int]:
    """The explicit tie-break appended to every fault-ranking sort."""
    return (fault.line.edge_index, fault.line.segment, fault.value)


# -- SCOAP measures ----------------------------------------------------------


@dataclass(frozen=True)
class ScoapMeasures:
    """Per-node controllability/observability plus per-edge observability.

    ``cc0[n]`` / ``cc1[n]`` estimate the cost of driving node ``n``'s
    output to 0 / 1 from the primary inputs; ``co[n]`` the cost of
    propagating a difference on ``n``'s output to a primary output;
    ``edge_co[i]`` the observability *at edge i's sink pin* (after the
    edge's registers have been crossed).  ``depth[n]`` is the static
    distance-to-output estimate.  Register crossings cost
    :data:`SCOAP_REGISTER_COST` apiece, so all measures are sequential-
    depth-aware.  Line-level measures derive from these: segment ``s`` of
    edge ``e`` sits ``s - 1`` registers after the driver and
    ``num_lines - s`` registers before the sink.

    ``min_frames[i]`` is a **sound lower bound** on the time-frame window
    any fault on edge ``i`` needs: with an all-X initial state a node
    whose every source path crosses ``k`` registers cannot carry a known
    value before frame ``k`` (every 3-valued gate maps all-X inputs to
    X), and an effect must still cross the edge's own registers plus the
    cheapest register path to an output before it is observed.  Searching
    a shallower window is provably futile, which the guided engine
    exploits to skip escalation levels (and whole faults, proven
    undetectable within the cap) that the unguided ladder burns whole
    backtrack budgets on.
    """

    cc0: Dict[str, float]
    cc1: Dict[str, float]
    co: Dict[str, float]
    edge_co: Dict[int, float]
    depth: Dict[str, int]
    min_frames: Dict[int, int] = field(default_factory=dict)
    # The integer register-distance fixpoints behind ``min_frames``, kept
    # so the engine can frame-gate individual excitation objectives too:
    # ``known[n]`` = registers on the cheapest input->n path (n is
    # provably X before that frame); ``pin_regs[i]`` = registers on the
    # cheapest path from edge i's sink pin to an output.
    known: Dict[str, int] = field(default_factory=dict)
    pin_regs: Dict[int, int] = field(default_factory=dict)

    def line_measures(
        self, circuit: Circuit, line: LineRef
    ) -> Tuple[float, float, float]:
        """``(cc0, cc1, co)`` of one line of one edge."""
        edge = circuit.edge(line.edge_index)
        before = SCOAP_REGISTER_COST * (line.segment - 1)
        after = SCOAP_REGISTER_COST * (edge.num_lines - line.segment)
        cc0 = min(self.cc0.get(edge.source, UNREACHABLE) + before, UNREACHABLE)
        cc1 = min(self.cc1.get(edge.source, UNREACHABLE) + before, UNREACHABLE)
        co = min(self.edge_co.get(line.edge_index, UNREACHABLE) + after, UNREACHABLE)
        return cc0, cc1, co

    def detect_cost(self, circuit: Circuit, fault: StuckAtFault) -> float:
        """Estimated cost of exciting *and* observing one stuck-at fault."""
        cc0, cc1, co = self.line_measures(circuit, fault.line)
        excite = cc1 if fault.value == 0 else cc0
        return min(excite + co, UNREACHABLE)


def _gate_controllability(
    gate_type: GateType, in0: List[float], in1: List[float]
) -> Tuple[float, float]:
    """SCOAP controllability of one gate from its input-line measures."""
    if gate_type in (GateType.NOT, GateType.BUF):
        c0, c1 = in0[0] + 1.0, in1[0] + 1.0
        if gate_type is GateType.NOT:
            c0, c1 = in1[0] + 1.0, in0[0] + 1.0
        return min(c0, UNREACHABLE), min(c1, UNREACHABLE)
    if gate_type in (GateType.AND, GateType.NAND):
        c1 = min(sum(in1) + 1.0, UNREACHABLE)
        c0 = min(min(in0) + 1.0, UNREACHABLE)
    elif gate_type in (GateType.OR, GateType.NOR):
        c0 = min(sum(in0) + 1.0, UNREACHABLE)
        c1 = min(min(in1) + 1.0, UNREACHABLE)
    else:  # XOR / XNOR: pairwise fold of the two-input rule
        c0, c1 = in0[0], in1[0]
        for a0, a1 in zip(in0[1:], in1[1:]):
            c0, c1 = (
                min(c0 + a0, c1 + a1) + 1.0,
                min(c1 + a0, c0 + a1) + 1.0,
            )
        c0 = min(c0, UNREACHABLE)
        c1 = min(c1, UNREACHABLE)
    if gate_type in (GateType.NAND, GateType.NOR, GateType.XNOR):
        c0, c1 = c1, c0
    return c0, c1


def compute_scoap(circuit: Circuit) -> ScoapMeasures:
    """SCOAP controllability/observability as a fixpoint over the cyclic
    graph (state feedback makes a single topological pass insufficient;
    the measures only ever decrease, so iteration converges)."""
    topo = circuit.topo_order()
    in_edges = {name: tuple(circuit.in_edges(name)) for name in circuit.nodes}
    out_edges = {name: tuple(circuit.out_edges(name)) for name in circuit.nodes}

    cc0: Dict[str, float] = {}
    cc1: Dict[str, float] = {}
    for name, node in circuit.nodes.items():
        if node.kind is NodeKind.INPUT:
            cc0[name], cc1[name] = 1.0, 1.0
        elif node.kind is NodeKind.CONST0:
            cc0[name], cc1[name] = 0.0, UNREACHABLE
        elif node.kind is NodeKind.CONST1:
            cc0[name], cc1[name] = UNREACHABLE, 0.0
        else:
            cc0[name], cc1[name] = UNREACHABLE, UNREACHABLE

    def line_in(edge) -> Tuple[float, float]:
        crossing = SCOAP_REGISTER_COST * edge.weight
        return (
            min(cc0[edge.source] + crossing, UNREACHABLE),
            min(cc1[edge.source] + crossing, UNREACHABLE),
        )

    for _ in range(len(circuit.nodes)):
        changed = False
        for name in topo:
            node = circuit.node(name)
            edges = in_edges[name]
            if not edges or node.kind in (
                NodeKind.INPUT, NodeKind.CONST0, NodeKind.CONST1
            ):
                continue
            if node.kind is NodeKind.GATE:
                pairs = [line_in(edge) for edge in edges]
                c0, c1 = _gate_controllability(
                    node.gate_type, [p[0] for p in pairs], [p[1] for p in pairs]
                )
            else:  # FANOUT / OUTPUT pass the driving line through
                c0, c1 = line_in(edges[0])
            if c0 < cc0[name]:
                cc0[name] = c0
                changed = True
            if c1 < cc1[name]:
                cc1[name] = c1
                changed = True
        if not changed:
            break

    # Observability: backward fixpoint.  edge_co is the cost of observing
    # a difference presented at the edge's *sink pin*; crossing the edge's
    # registers is charged when the measure is pulled back to the driver.
    co: Dict[str, float] = {name: UNREACHABLE for name in circuit.nodes}
    edge_co: Dict[int, float] = {edge.index: UNREACHABLE for edge in circuit.edges}
    side_cost = {
        GateType.AND: cc1, GateType.NAND: cc1,
        GateType.OR: cc0, GateType.NOR: cc0,
    }
    for _ in range(len(circuit.nodes)):
        changed = False
        for name in reversed(topo):
            node = circuit.node(name)
            for edge in out_edges[name]:
                sink = circuit.node(edge.sink)
                if sink.kind is NodeKind.OUTPUT:
                    pin_co = 0.0
                elif sink.kind is NodeKind.FANOUT:
                    pin_co = co[edge.sink]
                elif sink.kind is NodeKind.GATE:
                    pin_co = co[edge.sink] + 1.0
                    sides = side_cost.get(sink.gate_type)
                    for other in in_edges[edge.sink]:
                        if other.index == edge.index:
                            continue
                        crossing = SCOAP_REGISTER_COST * other.weight
                        if sides is not None:
                            pin_co += sides[other.source] + crossing
                        elif sink.gate_type in (GateType.XOR, GateType.XNOR):
                            pin_co += (
                                min(cc0[other.source], cc1[other.source])
                                + crossing
                            )
                else:
                    continue
                pin_co = min(pin_co, UNREACHABLE)
                if pin_co < edge_co[edge.index]:
                    edge_co[edge.index] = pin_co
                    changed = True
                pulled = min(
                    pin_co + SCOAP_REGISTER_COST * edge.weight, UNREACHABLE
                )
                if pulled < co[name]:
                    co[name] = pulled
                    changed = True
        if not changed:
            break

    depth: Dict[str, int] = {}
    for name in reversed(topo):
        edges = out_edges[name]
        if not edges:
            depth[name] = (
                0 if circuit.node(name).kind is NodeKind.OUTPUT else 999
            )
            continue
        depth[name] = min(depth.get(edge.sink, 999) + 1 for edge in edges)

    # Sound per-edge detection-depth bound from exact register distances.
    # ``known[n]``: registers on the cheapest source->n path (a node cannot
    # be non-X earlier); ``pin_regs[i]``: registers on the cheapest path
    # from edge i's sink pin to an output.  An effect excited on the edge
    # must additionally cross the edge's own registers, and observing at
    # frame f needs a window of f + 1 frames.
    BIG_I = 10 ** 6
    known: Dict[str, int] = {}
    for name, node in circuit.nodes.items():
        known[name] = (
            0
            if node.kind in (NodeKind.INPUT, NodeKind.CONST0, NodeKind.CONST1)
            else BIG_I
        )
    for _ in range(len(circuit.nodes)):
        changed = False
        for name in topo:
            if known[name] == 0:
                continue
            edges = in_edges[name]
            if not edges:
                continue
            best = min(edge.weight + known[edge.source] for edge in edges)
            if best < known[name]:
                known[name] = best
                changed = True
        if not changed:
            break
    obs_regs: Dict[str, int] = {name: BIG_I for name in circuit.nodes}
    pin_regs: Dict[int, int] = {}
    for _ in range(len(circuit.nodes)):
        changed = False
        for name in reversed(topo):
            for edge in out_edges[name]:
                sink = circuit.node(edge.sink)
                pin = 0 if sink.kind is NodeKind.OUTPUT else obs_regs[edge.sink]
                if pin < pin_regs.get(edge.index, BIG_I):
                    pin_regs[edge.index] = pin
                    changed = True
                pulled = edge.weight + pin
                if pulled < obs_regs[name]:
                    obs_regs[name] = pulled
                    changed = True
        if not changed:
            break
    min_frames = {
        edge.index: min(
            known[edge.source] + edge.weight + pin_regs.get(edge.index, BIG_I) + 1,
            BIG_I,
        )
        for edge in circuit.edges
    }
    return ScoapMeasures(
        cc0=cc0,
        cc1=cc1,
        co=co,
        edge_co=edge_co,
        depth=depth,
        min_frames=min_frames,
        known=known,
        pin_regs=pin_regs,
    )


def scoap_measures(circuit: Circuit, store=None, pin=None) -> ScoapMeasures:
    """Compute (or fetch from the store) the circuit's SCOAP measures.

    Cached under kind ``scoap``, keyed by circuit digest + structural
    identity + :data:`GUIDANCE_FORMAT_VERSION`; the payload echoes the
    structural identity so a colliding record is a plain miss.
    """
    if store is None:
        return compute_scoap(circuit)
    from repro.circuit.digest import circuit_digest, structural_identity
    from repro.store.artifacts import scoap_from_payload, scoap_payload

    key = store.key(
        "scoap",
        circuit_digest(circuit),
        structural_identity(circuit),
        GUIDANCE_FORMAT_VERSION,
    )
    payload = store.get("scoap", key, pin=pin)
    if payload is not None:
        measures = scoap_from_payload(payload, circuit)
        if measures is not None:
            return measures
    measures = compute_scoap(circuit)
    try:
        store.put("scoap", key, scoap_payload(circuit, measures), pin=pin)
    except OSError:
        pass  # an unwritable store only loses memoization
    return measures


# -- feature extraction ------------------------------------------------------


def fault_features(
    circuit: Circuit, scoap: ScoapMeasures, fault: StuckAtFault
) -> List[float]:
    """One predictor feature row (layout :data:`FEATURE_NAMES`)."""
    edge = circuit.edge(fault.line.edge_index)
    cc0, cc1, co = scoap.line_measures(circuit, fault.line)
    excite = cc1 if fault.value == 0 else cc0
    return [
        cc0,
        cc1,
        co,
        excite,
        min(excite + co, UNREACHABLE),
        float(fault.line.segment - 1),
        float(edge.num_lines - fault.line.segment),
        float(scoap.depth.get(edge.source, 999)),
        float(len(circuit.out_edges(edge.source))),
        float(fault.value),
        float(circuit.num_gates()),
        float(circuit.num_registers()),
    ]


def effort_label(backtracks: int, frames_simulated: int) -> float:
    """The training target: log-compressed deterministic-phase effort."""
    return math.log2(1.0 + backtracks + frames_simulated)


def training_rows(
    circuit: Circuit, scoap: ScoapMeasures, fault_rows: Sequence
) -> List[List[float]]:
    """Feature rows + effort label from per-fault
    :class:`~repro.atpg.budget.FaultEffort` records (one list per fault,
    label last).  Faults never attempted (``status == "budget"`` with zero
    counters) carry no effort signal and are skipped."""
    rows: List[List[float]] = []
    for record in fault_rows:
        if record.status == "budget" and record.backtracks == 0:
            continue
        fault = StuckAtFault(
            LineRef(record.fault_key[0], record.fault_key[1]), record.fault_key[2]
        )
        features = fault_features(circuit, scoap, fault)
        features.append(effort_label(record.backtracks, record.frames_simulated))
        rows.append(features)
    return rows


# -- the meta-predictor: a deterministic CART regression ensemble ------------


def _best_split(
    rows: Sequence[Sequence[float]],
    labels: Sequence[float],
    indices: List[int],
    min_leaf: int,
) -> Optional[Tuple[float, int, float]]:
    """``(sse, feature, threshold)`` of the best binary split, or None.

    Scanned with prefix sums over each feature's sorted order; ties break
    on (SSE, feature index, threshold) so training is deterministic.
    """
    count = len(indices)
    total = sum(labels[i] for i in indices)
    total_sq = sum(labels[i] * labels[i] for i in indices)
    base_sse = total_sq - total * total / count
    best: Optional[Tuple[float, int, float]] = None
    num_features = len(rows[indices[0]])
    for feature in range(num_features):
        order = sorted(indices, key=lambda i: (rows[i][feature], i))
        prefix = 0.0
        prefix_sq = 0.0
        for position in range(count - 1):
            index = order[position]
            value = labels[index]
            prefix += value
            prefix_sq += value * value
            left = position + 1
            right = count - left
            here = rows[index][feature]
            after = rows[order[position + 1]][feature]
            if here == after or left < min_leaf or right < min_leaf:
                continue
            sse = (prefix_sq - prefix * prefix / left) + (
                (total_sq - prefix_sq) - (total - prefix) * (total - prefix) / right
            )
            candidate = (sse, feature, (here + after) / 2.0)
            if best is None or candidate < best:
                best = candidate
    if best is None or best[0] >= base_sse - 1e-12:
        return None
    return best


def _build_tree(
    rows: Sequence[Sequence[float]],
    labels: Sequence[float],
    indices: List[int],
    depth: int,
    max_depth: int,
    min_leaf: int,
) -> List:
    """A CART regression tree as nested JSON-able lists.

    Leaf: ``[mean]``; internal: ``[feature, threshold, left, right]``
    (``row[feature] <= threshold`` goes left).
    """
    mean = sum(labels[i] for i in indices) / len(indices)
    if depth >= max_depth or len(indices) < 2 * min_leaf:
        return [mean]
    split = _best_split(rows, labels, indices, min_leaf)
    if split is None:
        return [mean]
    _, feature, threshold = split
    left = [i for i in indices if rows[i][feature] <= threshold]
    right = [i for i in indices if rows[i][feature] > threshold]
    if not left or not right:
        return [mean]
    return [
        feature,
        threshold,
        _build_tree(rows, labels, left, depth + 1, max_depth, min_leaf),
        _build_tree(rows, labels, right, depth + 1, max_depth, min_leaf),
    ]


def _tree_predict(tree: Sequence, features: Sequence[float]) -> float:
    while len(tree) == 4:
        tree = tree[2] if features[tree[0]] <= tree[1] else tree[3]
    return tree[0]


@dataclass(frozen=True)
class MetaPredictor:
    """A trained fault-effort predictor: a small CART ensemble.

    Pure data (nested lists of floats), so it pickles to pool workers,
    serializes to a store artifact, and predicts identically everywhere.
    Predictions are in :func:`effort_label` space (log2 effort); ranking
    is monotone in it, and :meth:`predicted_cost` maps back to linear
    effort for load balancing.
    """

    feature_names: Tuple[str, ...]
    trees: Tuple
    training_rows: int = 0

    def predict(self, features: Sequence[float]) -> float:
        total = 0.0
        for tree in self.trees:
            total += _tree_predict(tree, features)
        return total / len(self.trees)

    def predicted_cost(self, features: Sequence[float]) -> float:
        """Predicted linear effort (backtracks + frames) for one fault."""
        return max(0.0, 2.0 ** self.predict(features) - 1.0)

    def to_payload(self) -> Dict[str, object]:
        return {
            "version": PREDICTOR_FORMAT_VERSION,
            "feature_names": list(self.feature_names),
            "trees": [list(_copy_tree(tree)) for tree in self.trees],
            "training_rows": self.training_rows,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> Optional["MetaPredictor"]:
        try:
            if payload.get("version") != PREDICTOR_FORMAT_VERSION:
                return None
            names = tuple(str(n) for n in payload["feature_names"])
            if names != FEATURE_NAMES:
                return None
            trees = tuple(_copy_tree(tree) for tree in payload["trees"])
            if not trees:
                return None
            return cls(
                feature_names=names,
                trees=trees,
                training_rows=int(payload.get("training_rows", 0)),
            )
        except (KeyError, TypeError, ValueError, IndexError):
            return None


def _copy_tree(tree: Sequence):
    if len(tree) == 4:
        return [int(tree[0]), float(tree[1]), _copy_tree(tree[2]), _copy_tree(tree[3])]
    return [float(tree[0])]


def train_predictor(
    rows: Sequence[Sequence[float]],
    *,
    num_trees: int = 3,
    max_depth: int = 6,
    min_leaf: int = 3,
) -> Optional[MetaPredictor]:
    """Train the ensemble on labelled rows (features + label last).

    Each tree trains on a deterministic fold (row ``i`` left out of tree
    ``i % num_trees`` when there are enough rows), a stride-bagging that
    de-correlates the trees without randomness.  Returns ``None`` when the
    dataset is too small to split at all.
    """
    rows = [list(map(float, row)) for row in rows]
    if len(rows) < 2 * min_leaf:
        return None
    features = [row[:-1] for row in rows]
    labels = [row[-1] for row in rows]
    trees = []
    for tree_index in range(num_trees):
        fold = [
            i for i in range(len(rows)) if i % num_trees != tree_index
        ]
        if len(fold) < 2 * min_leaf:
            fold = list(range(len(rows)))
        trees.append(
            _build_tree(features, labels, fold, 0, max_depth, min_leaf)
        )
    return MetaPredictor(
        feature_names=FEATURE_NAMES,
        trees=tuple(trees),
        training_rows=len(rows),
    )


# -- the policy object the engine consumes -----------------------------------


@dataclass(frozen=True)
class GuidancePolicy:
    """Precomputed per-node guidance tables for one circuit.

    ``cost0[n]`` / ``cost1[n]`` score the difficulty of justifying node
    ``n`` to 0 / 1 (SCOAP controllability, or predictor-adjusted in
    learned mode); ``observe[n]`` ranks D-frontier gates (lower = easier
    to propagate through).  ``fault_cost`` maps each fault's
    :func:`fault_sort_key` to its predicted detection cost, filled in by
    :meth:`score_faults` and reused by the pool partitioner.  Plain
    dictionaries of floats: cheap to pickle to pool workers, and every
    consumer adds an explicit tie-break, so guided runs are reproducible.
    """

    mode: str  # "scoap" | "learned"
    scoap: ScoapMeasures
    predictor: Optional[MetaPredictor] = None
    cost0: Dict[str, float] = field(default_factory=dict)
    cost1: Dict[str, float] = field(default_factory=dict)
    observe: Dict[str, float] = field(default_factory=dict)

    def fault_score(self, circuit: Circuit, fault: StuckAtFault) -> float:
        if self.predictor is not None:
            return self.predictor.predicted_cost(
                fault_features(circuit, self.scoap, fault)
            )
        return self.scoap.detect_cost(circuit, fault)

    def score_faults(
        self, circuit: Circuit, faults: Sequence[StuckAtFault]
    ) -> Dict[StuckAtFault, float]:
        return {fault: self.fault_score(circuit, fault) for fault in faults}


def _learned_node_costs(
    circuit: Circuit, scoap: ScoapMeasures, predictor: MetaPredictor
) -> Tuple[Dict[str, float], Dict[str, float], Dict[str, float]]:
    """Predictor-scored objective tables, one prediction per (node, value).

    The cost of the objective "justify node ``n`` to ``v``" is scored as
    the predicted detection cost of the *virtual fault* ``n``
    stuck-at-``not v`` on its output line -- exciting that fault is
    exactly driving ``n`` to ``v``.  Precomputing here keeps PODEM's
    objective-selection loop free of predictor calls.
    """
    cost0: Dict[str, float] = {}
    cost1: Dict[str, float] = {}
    observe: Dict[str, float] = {}
    for name in circuit.topo_order():
        edges = circuit.out_edges(name)
        if not edges:
            continue
        line = LineRef(edges[0].index, 1)
        p1 = predictor.predicted_cost(
            fault_features(circuit, scoap, StuckAtFault(line, 0))
        )
        p0 = predictor.predicted_cost(
            fault_features(circuit, scoap, StuckAtFault(line, 1))
        )
        cost0[name] = p0
        cost1[name] = p1
        observe[name] = (p0 + p1) / 2.0
    return cost0, cost1, observe


def make_policy(
    circuit: Circuit,
    mode: str,
    *,
    predictor: Optional[MetaPredictor] = None,
    scoap: Optional[ScoapMeasures] = None,
    store=None,
    pin=None,
) -> Optional[GuidancePolicy]:
    """Resolve a ``guidance`` mode into a policy (``None`` for ``off``).

    ``auto`` resolves to ``learned`` when a predictor is at hand (passed
    in, or persisted in the store under kind ``predictor``), ``scoap``
    otherwise; ``learned`` without any predictor falls back to the SCOAP
    policy rather than failing -- the knob is a speed request, not a
    correctness contract.
    """
    if mode in (None, "off"):
        return None
    if mode not in GUIDANCE_MODES:
        raise ValueError(
            f"unknown guidance {mode!r} (expected one of {GUIDANCE_MODES})"
        )
    if scoap is None:
        scoap = scoap_measures(circuit, store=store, pin=pin)
    if predictor is None and mode in ("learned", "auto") and store is not None:
        predictor = load_predictor(store, pin=pin)
    if mode in ("learned", "auto") and predictor is not None:
        cost0, cost1, observe = _learned_node_costs(circuit, scoap, predictor)
        return GuidancePolicy(
            mode="learned",
            scoap=scoap,
            predictor=predictor,
            cost0=cost0,
            cost1=cost1,
            observe=observe,
        )
    return GuidancePolicy(
        mode="scoap",
        scoap=scoap,
        cost0=dict(scoap.cc0),
        cost1=dict(scoap.cc1),
        observe=dict(scoap.co),
    )


def policy_from_effort_rows(
    circuit: Circuit,
    fault_rows: Sequence,
    *,
    scoap: Optional[ScoapMeasures] = None,
) -> GuidancePolicy:
    """Train a learned policy directly from one run's effort rows.

    The self-training loop of the benchmarks: run unguided, learn the
    circuit's own cost surface, run guided.  Falls back to the SCOAP
    policy when the rows cannot support a predictor.
    """
    if scoap is None:
        scoap = compute_scoap(circuit)
    predictor = train_predictor(training_rows(circuit, scoap, fault_rows))
    if predictor is None:
        return make_policy(circuit, "scoap", scoap=scoap)
    return make_policy(circuit, "learned", predictor=predictor, scoap=scoap)


# -- store round-trips -------------------------------------------------------

#: Store key under which the (single, shared) trained predictor lives.
PREDICTOR_KEY_NAME = "default"


def predictor_store_key(store) -> str:
    return store.key(
        "predictor", PREDICTOR_KEY_NAME, PREDICTOR_FORMAT_VERSION
    )


def save_predictor(store, predictor: MetaPredictor, pin=None) -> str:
    key = predictor_store_key(store)
    store.put("predictor", key, predictor.to_payload(), pin=pin)
    return key


def load_predictor(store, pin=None) -> Optional[MetaPredictor]:
    payload = store.get("predictor", predictor_store_key(store), pin=pin)
    if payload is None:
        return None
    return MetaPredictor.from_payload(payload)


#: Store key under which the shared training dataset accumulates.
DATASET_KEY_NAME = "dataset"

#: Rows kept in the shared dataset; oldest rows age out first, so the
#: predictor tracks the circuits the store actually serves.
MAX_DATASET_ROWS = 20000


def dataset_store_key(store) -> str:
    return store.key(
        "guidance-data", DATASET_KEY_NAME, GUIDANCE_FORMAT_VERSION
    )


def load_training_rows(store, pin=None) -> List[List[float]]:
    from repro.store.artifacts import guidance_rows_from_payload

    payload = store.get("guidance-data", dataset_store_key(store), pin=pin)
    if payload is None:
        return []
    rows = guidance_rows_from_payload(payload, FEATURE_NAMES)
    return rows if rows is not None else []


def log_training_rows(
    store, circuit: Circuit, fault_rows: Sequence, *, scoap=None, pin=None
) -> int:
    """Fold one run's per-fault effort rows into the shared dataset.

    Called after *every* store-backed ATPG stage regardless of guidance
    mode -- unguided runs are the least biased training signal.  Returns
    the dataset size after the merge.  The read-merge-write is not atomic
    across concurrent writers; a lost merge only loses training rows,
    which is memoization-grade data, so no lock is taken.
    """
    from repro.store.artifacts import guidance_rows_payload

    if scoap is None:
        scoap = scoap_measures(circuit, store=store, pin=pin)
    fresh = training_rows(circuit, scoap, fault_rows)
    existing = load_training_rows(store, pin=pin)
    if not fresh:
        return len(existing)
    merged = (existing + fresh)[-MAX_DATASET_ROWS:]
    try:
        store.put(
            "guidance-data",
            dataset_store_key(store),
            guidance_rows_payload(FEATURE_NAMES, merged),
            pin=pin,
        )
    except OSError:
        pass  # an unwritable store only loses training data
    return len(merged)


def train_predictor_from_store(store, pin=None) -> Optional[MetaPredictor]:
    """Train on the store's accumulated dataset and persist the result.

    The offline half of ``guidance="auto"``: runs log rows as they go,
    this retrains the shared predictor from everything logged so far.
    Returns ``None`` (and persists nothing) when the dataset is still too
    small to split.
    """
    predictor = train_predictor(load_training_rows(store, pin=pin))
    if predictor is not None:
        try:
            save_predictor(store, predictor, pin=pin)
        except OSError:
            pass
    return predictor


__all__ = [
    "FEATURE_NAMES",
    "GUIDANCE_FORMAT_VERSION",
    "GUIDANCE_MODES",
    "GuidancePolicy",
    "MetaPredictor",
    "PREDICTOR_FORMAT_VERSION",
    "SCOAP_REGISTER_COST",
    "ScoapMeasures",
    "compute_scoap",
    "effort_label",
    "fault_features",
    "fault_sort_key",
    "load_predictor",
    "load_training_rows",
    "log_training_rows",
    "make_policy",
    "policy_from_effort_rows",
    "save_predictor",
    "scoap_measures",
    "train_predictor",
    "train_predictor_from_store",
    "training_rows",
]
