"""Deterministic sequential test generation: PODEM over time frames.

The classic structural approach of HITEC-family ATPGs, in simplified form:

* the circuit is expanded over ``T`` time frames with the all-X initial
  state in frame 0 (no global reset);
* decisions are binary assignments to primary inputs of specific frames,
  found by *backtracing* an objective through gates and across registers
  (crossing a register moves the objective one frame earlier);
* after every decision both the fault-free and the faulty machine are
  re-simulated in three-valued logic; a fault is detected when some
  primary output in some frame carries complementary binary values;
* conflicts trigger chronological backtracking with a per-fault backtrack
  limit (aborted faults count against fault efficiency, as in HITEC);
* frame counts increase iteratively (1, 2, ..., max_frames) so short tests
  are found quickly and deep state justification is attempted only when
  needed.

Objectives follow PODEM's two-phase scheme: first *excite* the fault
(drive the faulted line, in the good machine, to the complement of the
stuck value at a frame from which the effect can still reach frame T-1),
then *propagate* by picking a D-frontier gate -- a gate with a provable
good/faulty difference on an input and an undetermined output -- and
setting one of its unknown inputs to the gate's non-controlling value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.circuit.netlist import Circuit, LineRef
from repro.circuit.types import GateType, NodeKind
from repro.faults.model import StuckAtFault
from repro.logic.three_valued import ONE, Trit, X, ZERO, t_not
from repro.atpg.budget import EffortMeter
from repro.simulation.cache import compiled_circuit, fast_stepper
from repro.simulation.codegen import FastStepper
from repro.simulation.sequential import SequentialSimulator  # noqa: F401 (re-exported for callers)


@dataclass
class PodemResult:
    """Outcome for one targeted fault."""

    detected: bool
    sequence: Optional[List[Tuple[Trit, ...]]]
    backtracks: int
    aborted: bool
    frames_used: int


class PodemEngine:
    """Targets single faults on one circuit."""

    def __init__(self, circuit: Circuit):
        self.circuit = circuit
        self.compiled = compiled_circuit(circuit)
        self.good_step = fast_stepper(circuit).step
        self.num_inputs = len(circuit.input_names)
        self.num_registers = self.compiled.num_registers
        self._pi_index = {name: i for i, name in enumerate(circuit.input_names)}
        self._depth = self._static_depths()
        self._control_cost = self._static_controllability()

    def _static_depths(self) -> Dict[str, int]:
        """Static distance-to-output estimate used to rank D-frontier gates."""
        depth: Dict[str, int] = {}
        for name in reversed(self.circuit.topo_order()):
            out_edges = self.circuit.out_edges(name)
            if not out_edges:
                depth[name] = 0 if self.circuit.node(name).kind is NodeKind.OUTPUT else 999
                continue
            depth[name] = min(depth.get(e.sink, 999) + 1 for e in out_edges)
        return depth

    def _static_controllability(self) -> Dict[str, int]:
        """SCOAP-flavoured cost of setting a node from the primary inputs.

        Registers are expensive (they push the objective a frame earlier),
        so backtrace prefers purely combinational paths to PIs and never
        cycles around state feedback loops.  Computed as a shortest-path
        fixpoint over the cyclic graph.
        """
        BIG = 10 ** 6
        cost: Dict[str, int] = {}
        for name, node in self.circuit.nodes.items():
            cost[name] = 0 if node.kind is NodeKind.INPUT else BIG
        for _ in range(len(self.circuit.nodes)):
            changed = False
            for name in self.circuit.topo_order():
                node = self.circuit.node(name)
                if node.kind is NodeKind.INPUT:
                    continue
                in_edges = self.circuit.in_edges(name)
                if not in_edges:
                    continue  # constants stay expensive
                best = min(
                    cost[e.source] + 1 + 100 * e.weight for e in in_edges
                )
                if best < cost[name]:
                    cost[name] = best
                    changed = True
            if not changed:
                break
        return cost

    # -- public API ----------------------------------------------------------

    def generate(
        self,
        fault: StuckAtFault,
        meter: EffortMeter,
        max_frames: Optional[int] = None,
        deadline: Optional[float] = None,
    ) -> PodemResult:
        """Try to find a test sequence for ``fault``.

        ``deadline`` (a ``time.perf_counter`` timestamp) caps the effort
        spent on this single fault, on top of the global budget.
        """
        import time as _time

        limit = max_frames or meter.budget.max_frames
        faulty_step = FastStepper(
            self.circuit, fault=fault, compiled=self.compiled
        ).step
        total_backtracks = 0
        # Geometric time-frame escalation with a *fresh* backtrack budget
        # per depth level.  Total effort per aborted fault therefore scales
        # with the unrolling depth -- which scales with the flip-flop
        # count.  This is the cost model of iterative-deepening sequential
        # ATPG: circuits retimed to several times more registers cost
        # several times more per fault, the paper's Table II effect.
        levels = []
        frames = 1
        while frames < limit:
            levels.append(frames)
            frames *= 2
        levels.append(limit)
        aborted_any = False
        for frames in levels:
            if meter.out_of_time() or (
                deadline is not None and _time.perf_counter() >= deadline
            ):
                return PodemResult(False, None, total_backtracks, True, frames)
            found, used, aborted = self._search(
                fault,
                faulty_step,
                frames,
                meter.budget.backtracks_per_fault,
                meter,
                deadline,
            )
            total_backtracks += used
            if found is not None:
                return PodemResult(True, found, total_backtracks, False, frames)
            aborted_any = aborted_any or aborted
        return PodemResult(False, None, total_backtracks, aborted_any, levels[-1])

    # -- search over one frame count -------------------------------------------

    def _search(
        self,
        fault: StuckAtFault,
        faulty_step,
        frames: int,
        backtrack_limit: int,
        meter: EffortMeter,
        deadline: Optional[float] = None,
    ):
        import time as _time

        inputs: List[List[Trit]] = [
            [X] * self.num_inputs for _ in range(frames)
        ]
        decisions: List[Tuple[int, int, Trit, bool]] = []  # (frame, pi, value, flipped)
        backtracks = 0
        # Frame caches: frame records are (outputs, next_state, values).
        good: List[Tuple] = []
        bad: List[Tuple] = []
        self._resim(inputs, 0, good, bad, faulty_step, meter)

        while True:
            if meter.out_of_time() or (
                deadline is not None and _time.perf_counter() >= deadline
            ):
                return None, backtracks, True
            if self._detected(good, bad):
                return [tuple(v if v != X else ZERO for v in frame) for frame in inputs], backtracks, False
            prune = self._prune(good, bad)
            assignment = None
            if not prune:
                for objective in self._objective_candidates(
                    fault, good, bad, frames
                ):
                    assignment = self._backtrace(objective, good, inputs)
                    if assignment is not None:
                        break
            if assignment is None:
                # Conflict or no way forward: chronological backtracking.
                # Track the earliest frame touched by the pops so the frame
                # cache is resimulated from the right point.
                earliest = frames
                while decisions:
                    frame, pi, value, flipped = decisions.pop()
                    inputs[frame][pi] = X
                    earliest = min(earliest, frame)
                    if not flipped:
                        backtracks += 1
                        meter.note_backtrack()
                        if backtracks >= backtrack_limit:
                            return None, backtracks, True
                        inputs[frame][pi] = t_not(value)
                        decisions.append((frame, pi, t_not(value), True))
                        self._resim(inputs, earliest, good, bad, faulty_step, meter)
                        break
                else:
                    return None, backtracks, False  # search space exhausted
                continue
            frame, pi, value = assignment
            inputs[frame][pi] = value
            decisions.append((frame, pi, value, False))
            self._resim(inputs, frame, good, bad, faulty_step, meter)

    # -- simulation -------------------------------------------------------------

    def _resim(self, inputs, from_frame, good, bad, faulty_step, meter):
        """Recompute frames ``from_frame ..`` in place (earlier frames are
        unaffected by an input change at ``from_frame``)."""
        meter.note_simulation()
        del good[from_frame:]
        del bad[from_frame:]
        unknown = (X,) * self.num_registers
        good_state = good[-1][1] if good else unknown
        bad_state = bad[-1][1] if bad else unknown
        good_step = self.good_step
        for vector in inputs[from_frame:]:
            vector = tuple(vector)
            record = good_step(good_state, vector)
            good.append(record)
            good_state = record[1]
            record = faulty_step(bad_state, vector)
            bad.append(record)
            bad_state = record[1]

    def _detected(self, good, bad) -> bool:
        for record_good, record_bad in zip(good, bad):
            for g, b in zip(record_good[0], record_bad[0]):
                if g != X and b != X and g != b:
                    return True
        return False

    def _prune(self, good, bad) -> bool:
        """Heuristic prune: identical, fully binary machine states at the
        window's end mean no *stored* fault effect survives; the branch is
        abandoned.  (This can sacrifice tests that would detect purely
        combinationally in an earlier frame after further refinement --
        a completeness/efficiency trade-off, counted against coverage like
        any abort.)"""
        final_good = good[-1][1]
        final_bad = bad[-1][1]
        if final_good != final_bad:
            return False
        if any(v == X for v in final_good):
            return False
        return True

    # -- objectives ---------------------------------------------------------------

    def _line_source(self, line: LineRef, frame: int):
        """(node, frame) whose output drives this line, or None pre-window."""
        edge = self.circuit.edge(line.edge_index)
        source_frame = frame - (line.segment - 1)
        if source_frame < 0:
            return None
        return edge.source, source_frame

    def _excited_frames(self, fault: StuckAtFault, good) -> List[int]:
        """Frames where the good machine provably drives the faulted line to
        the complement of the stuck value (the faulty line is forced, so an
        effect exists at the line in those frames)."""
        desired = t_not(fault.value)
        edge = self.circuit.edge(fault.line.edge_index)
        slot = self.compiled.slot_of[edge.source]
        frames = []
        offset = fault.line.segment - 1
        for frame in range(len(good)):
            source_frame = frame - offset
            if source_frame < 0:
                continue
            if good[source_frame][2][slot] == desired:
                frames.append(frame)
        return frames

    def _objective_candidates(self, fault, good, bad, frames):
        """Objectives to try, in preference order.

        Excitation candidates target the *earliest* frames first: an
        effect created early has the rest of the window to propagate
        (exciting only in the last frame leaves no room to observe faults
        whose effect must first traverse registers).
        """
        excited = self._excited_frames(fault, good)
        candidates = []
        if not excited and not self._effect_exists(good, bad):
            edge = self.circuit.edge(fault.line.edge_index)
            desired = t_not(fault.value)
            slot = self.compiled.slot_of[edge.source]
            latest = frames - 1 - (fault.line.segment - 1)
            for target_frame in range(0, latest + 1):
                if good[target_frame][2][slot] == X:
                    candidates.append((edge.source, desired, target_frame))
            return candidates
        # Propagation: D-frontier gates closest to an output first; within
        # a gate, the cheapest-to-control unknown side inputs first.
        frontier = self._d_frontier(fault, good, bad, excited)
        frontier.sort(key=lambda item: self._depth.get(item[0], 999))
        for gate_name, frame in frontier:
            node = self.circuit.node(gate_name)
            controlling = node.gate_type.controlling_value if node.gate_type else None
            non_controlling = (
                t_not(controlling) if controlling is not None else ONE
            )
            gate_candidates = []
            for edge in self.circuit.in_edges(gate_name):
                located = self._line_source(
                    LineRef(edge.index, edge.num_lines), frame
                )
                if located is None:
                    continue
                source, source_frame = located
                value = good[source_frame][2][
                    self.compiled.slot_of[source]
                ]
                if value != X:
                    continue
                gate_candidates.append(
                    (
                        self._control_cost.get(source, 10 ** 6),
                        (source, non_controlling, source_frame),
                    )
                )
            gate_candidates.sort(key=lambda item: item[0])
            candidates.extend(objective for _, objective in gate_candidates)
        return candidates

    def _effect_exists(self, good, bad) -> bool:
        for record_good, record_bad in zip(good, bad):
            for g, b in zip(record_good[2], record_bad[2]):
                if g != X and b != X and g != b:
                    return True
            for g, b in zip(record_good[1], record_bad[1]):
                if g != X and b != X and g != b:
                    return True
        return False

    def _d_frontier(self, fault, good, bad, excited_frames) -> List[Tuple[str, int]]:
        """Gates with a provable input difference and undecided output.

        The faulted line's own consumer is added explicitly for the frames
        where the line is excited: the injection happens at the consumer's
        read, so node values alone would miss it.
        """
        frontier: List[Tuple[str, int]] = []
        names = self.circuit.topo_order()
        for frame, (record_good, record_bad) in enumerate(zip(good, bad)):
            for op in self.compiled.ops:
                if op.kind is not NodeKind.GATE:
                    continue
                out_good = record_good[2][op.slot]
                out_bad = record_bad[2][op.slot]
                if out_good != X and out_bad != X and out_good != out_bad:
                    continue  # effect already through this gate
                if out_good != X and out_good == out_bad:
                    continue  # blocked
                for read in op.reads:
                    if read.from_register:
                        g_val = self._register_value(good, frame, read.index)
                        b_val = self._register_value(bad, frame, read.index)
                    else:
                        g_val = record_good[2][read.index]
                        b_val = record_bad[2][read.index]
                    if g_val != X and b_val != X and g_val != b_val:
                        frontier.append((names[op.slot], frame))
                        break
        fault_edge = self.circuit.edge(fault.line.edge_index)
        if fault.line.segment == fault_edge.num_lines:
            sink = self.circuit.node(fault_edge.sink)
            if sink.kind is NodeKind.GATE:
                for frame in excited_frames:
                    frontier.append((fault_edge.sink, frame))
        return frontier

    def _register_value(self, steps, frame: int, register_slot: int):
        """Value of a register (its content *entering* ``frame``)."""
        if frame == 0:
            return X
        return steps[frame - 1][1][register_slot]

    # -- backtrace -------------------------------------------------------------------

    def _backtrace(self, objective, good, inputs):
        """Walk an objective back to an unassigned primary input."""
        node_name, value, frame = objective
        for _ in range(10_000):
            if frame < 0:
                return None
            node = self.circuit.node(node_name)
            if node.kind is NodeKind.INPUT:
                pi = self._pi_index[node_name]
                if inputs[frame][pi] != X:
                    return None  # already pinned: objective unreachable
                return (frame, pi, value)
            if node.kind in (NodeKind.CONST0, NodeKind.CONST1):
                return None
            if node.kind in (NodeKind.FANOUT, NodeKind.OUTPUT):
                edge = self.circuit.in_edges(node_name)[0]
                node_name = edge.source
                frame -= edge.weight
                continue
            # GATE: translate the desired output into an input objective.
            gate_type = node.gate_type
            desired = value
            if gate_type in (GateType.NOT, GateType.NAND, GateType.NOR, GateType.XNOR):
                desired = t_not(desired)
            # For AND/NAND base: output 1 needs all inputs 1, output 0 needs
            # one input 0; dually for OR/NOR.  For XOR pick any X input.
            base_and = gate_type in (GateType.AND, GateType.NAND)
            base_or = gate_type in (GateType.OR, GateType.NOR)
            chosen = None
            chosen_cost = None
            for edge in self.circuit.in_edges(node_name):
                source_frame = frame - edge.weight
                if source_frame < 0:
                    continue
                slot = self.compiled.slot_of[edge.source]
                current = good[source_frame][2][slot]
                if current != X:
                    continue
                source_cost = self._control_cost.get(edge.source, 10 ** 6)
                if chosen_cost is None or source_cost < chosen_cost:
                    chosen = (edge.source, source_frame)
                    chosen_cost = source_cost
            if chosen is None:
                return None
            node_name, frame = chosen
            if base_and:
                value = ONE if desired == ONE else ZERO
            elif base_or:
                value = ZERO if desired == ZERO else ONE
            elif gate_type in (GateType.NOT, GateType.BUF):
                value = desired
            else:  # XOR family: heuristic choice
                value = desired
        return None


__all__ = ["PodemEngine", "PodemResult"]
