"""Deterministic sequential test generation: PODEM over time frames.

The classic structural approach of HITEC-family ATPGs, in simplified form:

* the circuit is expanded over ``T`` time frames with the all-X initial
  state in frame 0 (no global reset);
* decisions are binary assignments to primary inputs of specific frames,
  found by *backtracing* an objective through gates and across registers
  (crossing a register moves the objective one frame earlier);
* after every decision both the fault-free and the faulty machine are
  re-simulated in three-valued logic; a fault is detected when some
  primary output in some frame carries complementary binary values;
* conflicts trigger chronological backtracking with a per-fault backtrack
  limit (aborted faults count against fault efficiency, as in HITEC);
* frame counts increase iteratively (1, 2, ..., max_frames) so short tests
  are found quickly and deep state justification is attempted only when
  needed.

Objectives follow PODEM's two-phase scheme: first *excite* the fault
(drive the faulted line, in the good machine, to the complement of the
stuck value at a frame from which the effect can still reach frame T-1),
then *propagate* by picking a D-frontier gate -- a gate with a provable
good/faulty difference on an input and an undetermined output -- and
setting one of its unknown inputs to the gate's non-controlling value.

Two interchangeable **resimulation kernels** back the search, selected by
the engine's ``kernel`` knob and guaranteed to produce bit-identical
:class:`PodemResult`\\ s:

``scalar``
    The baseline: per-fault code-generated steppers
    (:class:`~repro.simulation.codegen.FastStepper`) stepping the good and
    the faulty machine separately, with interpreted full-window rescans
    for detection, fault-effect and prune checks.

``dual`` (the default)
    The :class:`~repro.simulation.dual_codegen.DualFastStepper` kernel:
    one compiled pass per frame steps *both* machines over two-plane
    (value/care) bitmasks and returns the detection / difference / prune
    verdicts as lane masks, so the per-decision checks are O(frames
    recomputed) boolean merges instead of O(frames x slots) Python scans.
    On top of the packed pass the kernel adds

    * **branch-lane lookahead** -- every decision is simulated with its
      complement packed into a second bit lane, so flipping the decision
      on backtrack reuses the already-computed lane instead of
      resimulating; and
    * **incremental resimulation** -- per-frame records carry the machine
      states they were computed from, and a resimulation that reconverges
      to the previous trajectory (equal entering states, unchanged inputs)
      adopts the remaining suffix of records instead of recomputing it,
      while cumulative per-frame flags make the detection and
      effect-alive checks O(1) per decision.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.circuit.netlist import Circuit, LineRef
from repro.circuit.types import GateType, NodeKind
from repro.faults.model import StuckAtFault
from repro.logic.three_valued import ONE, Trit, X, ZERO, t_not
from repro.atpg.budget import EffortMeter
from repro.simulation.cache import compiled_circuit, dual_fast_stepper, fast_stepper
from repro.simulation.codegen import FastStepper
from repro.simulation.sequential import SequentialSimulator  # noqa: F401 (re-exported for callers)

#: Valid values for the ``kernel`` knob, fastest first.
PODEM_KERNELS = ("dual", "scalar")


@dataclass
class PodemResult:
    """Outcome for one targeted fault."""

    detected: bool
    sequence: Optional[List[Tuple[Trit, ...]]]
    backtracks: int
    aborted: bool
    frames_used: int


class _ScalarMachine:
    """Baseline resimulation state: two scalar steppers, full rescans.

    Frame records are the raw ``(outputs, next_state, values)`` step
    results; every query walks the record lists in interpreted Python.
    """

    def __init__(self, engine: "PodemEngine", faulty_step, inputs, meter):
        self.engine = engine
        self.good_step = engine.good_step
        self.faulty_step = faulty_step
        self.inputs = inputs
        self.meter = meter
        self.good: List[Tuple] = []
        self.bad: List[Tuple] = []
        self._unknown_regs = (X,) * engine.num_registers

    # -- simulation --------------------------------------------------------

    def _resim(self, from_frame: int) -> None:
        """Recompute frames ``from_frame ..`` in place (earlier frames are
        unaffected by an input change at ``from_frame``)."""
        good, bad = self.good, self.bad
        del good[from_frame:]
        del bad[from_frame:]
        unknown = (X,) * self.engine.num_registers
        good_state = good[-1][1] if good else unknown
        bad_state = bad[-1][1] if bad else unknown
        good_step = self.good_step
        faulty_step = self.faulty_step
        for vector in self.inputs[from_frame:]:
            vector = tuple(vector)
            record = good_step(good_state, vector)
            good.append(record)
            good_state = record[1]
            record = faulty_step(bad_state, vector)
            bad.append(record)
            bad_state = record[1]
        frames = 2 * (len(self.inputs) - from_frame)
        self.meter.note_simulation(frames=frames, lanes=frames)

    def resim_initial(self) -> None:
        self._resim(0)

    def resim_decision(self, frame: int, pi: int, value: Trit) -> None:
        self._resim(frame)

    def resim_flip(
        self, earliest: int, changed_max: int, frame: int, pi: int, value: Trit
    ) -> None:
        self._resim(earliest)

    # -- verdicts ----------------------------------------------------------

    def detected(self) -> bool:
        for record_good, record_bad in zip(self.good, self.bad):
            for g, b in zip(record_good[0], record_bad[0]):
                if g != X and b != X and g != b:
                    return True
        return False

    def effect_exists(self) -> bool:
        for record_good, record_bad in zip(self.good, self.bad):
            for g, b in zip(record_good[2], record_bad[2]):
                if g != X and b != X and g != b:
                    return True
            for g, b in zip(record_good[1], record_bad[1]):
                if g != X and b != X and g != b:
                    return True
        return False

    def prune(self) -> bool:
        """Identical, fully binary machine states at the window's end mean
        no *stored* fault effect survives; the branch is abandoned."""
        final_good = self.good[-1][1]
        final_bad = self.bad[-1][1]
        if final_good != final_bad:
            return False
        if any(v == X for v in final_good):
            return False
        return True

    # -- value accessors ---------------------------------------------------

    def good_value(self, frame: int, slot: int) -> Trit:
        return self.good[frame][2][slot]

    def good_values(self, frame: int) -> Tuple[Trit, ...]:
        return self.good[frame][2]

    def bad_values(self, frame: int) -> Tuple[Trit, ...]:
        return self.bad[frame][2]

    def good_regs(self, frame: int) -> Tuple[Trit, ...]:
        """Register contents *entering* ``frame``."""
        if frame == 0:
            return self._unknown_regs
        return self.good[frame - 1][1]

    def bad_regs(self, frame: int) -> Tuple[Trit, ...]:
        if frame == 0:
            return self._unknown_regs
        return self.bad[frame - 1][1]

    def frontier_frames(self) -> Iterable[int]:
        return range(len(self.good))

    # The baseline never caches frontier scans: every decision rescans the
    # whole window, which is exactly the cost the dual kernel eliminates.

    def frontier_cached(self, frame: int):
        return None

    def frontier_store(self, frame: int, entries) -> None:
        pass


# Field order of one DualFastStepper.step_dual result.
_GV, _GC, _BV, _BC, _GN, _BN, _DET, _VDIFF, _SDIFF, _SAME = range(10)


class _DualMachine:
    """Dual-kernel resimulation state: packed lanes, cached verdicts.

    Lane 0 carries the search's actual trajectory; lane 1 carries the
    complement of the most recent decision (the branch a backtrack would
    flip to).  ``self.active`` tracks, per frame, which lane is the real
    one -- flipping a speculated decision just switches the active lane
    for the suffix, with zero simulation.
    """

    WIDTH = 2
    MASK = 3

    def __init__(self, engine: "PodemEngine", fault: StuckAtFault, inputs, meter):
        stepper = engine.dual
        self.step = engine.dual_step
        # Per-fault frame memo, shared across escalation levels (the engine
        # resets it per generate()).  Chronological backtracking revisits
        # the same (entering states, packed inputs) configuration
        # constantly -- measured hit rates run above 70% -- and with the
        # fault's injection masks fixed, the step is a pure function of
        # that key, so a memoized record is bit-identical to a recomputed
        # one.
        self._memo = engine._step_memo
        self.sa1, self.sa0 = stepper.injection_masks(fault, width=self.WIDTH)
        self.inputs = inputs
        self.meter = meter
        self.num_registers = engine.num_registers
        self.records: List[Tuple] = []
        self.active: List[int] = []
        # Cumulative per-frame verdicts: _det_cum[f] != 0 iff some frame
        # <= f detects; _eff_cum[f] likewise for a live fault effect.
        self._det_cum: List[int] = []
        self._eff_cum: List[int] = []
        # Lazily materialized per-frame trit tuples and D-frontier entry
        # lists (None = not computed); invalidated exactly like the frame
        # records, so a decision at frame f never re-derives anything for
        # the untouched prefix.
        self._gvals: List[Optional[Tuple[Trit, ...]]] = []
        self._bvals: List[Optional[Tuple[Trit, ...]]] = []
        self._frontier: List[Optional[List[Tuple[str, int]]]] = []
        self._unknown_regs = (X,) * engine.num_registers
        # (frame, pi, value) of the decision whose complement lane 1
        # currently models, or None when lane 1 is stale.
        self.spec: Optional[Tuple[int, int, Trit]] = None

    # -- plane helpers -----------------------------------------------------

    def _lane_trits(self, pairs, lane: int) -> Tuple[Trit, ...]:
        bit = 1 << lane
        return tuple(
            ((ONE if value & bit else ZERO) if care & bit else X)
            for value, care in pairs
        )

    @staticmethod
    def _lane_equal(pairs_a, lane_a: int, pairs_b, lane_b: int) -> bool:
        """Whether two plane-pair states carry equal trits on the given
        lanes (compared bitwise, without materializing trit tuples)."""
        for (value_a, care_a), (value_b, care_b) in zip(pairs_a, pairs_b):
            known = (care_a >> lane_a) & 1
            if known != (care_b >> lane_b) & 1:
                return False
            if known and ((value_a >> lane_a) ^ (value_b >> lane_b)) & 1:
                return False
        return True

    def _broadcast_lane(self, pairs, lane: int):
        """Replicate one lane of a plane-pair state across both lanes."""
        bit = 1 << lane
        mask = self.MASK
        return tuple(
            ((mask if value & bit else 0, mask) if care & bit else (0, 0))
            for value, care in pairs
        )

    def _pack_frame(self, frame: int, spec):
        """This frame's input planes; the spec decision diverges in lane 1."""
        spec_pi = spec[1] if spec is not None and spec[0] == frame else -1
        mask = self.MASK
        packed = []
        for pi, trit in enumerate(self.inputs[frame]):
            if pi == spec_pi:
                # lane 0 = the assigned value, lane 1 = its complement.
                packed.append((1 if trit == ONE else 2, mask))
            elif trit == ONE:
                packed.append((mask, mask))
            elif trit == ZERO:
                packed.append((0, mask))
            else:
                packed.append((0, 0))
        return tuple(packed)

    # -- simulation --------------------------------------------------------

    def _resim(self, from_frame: int, changed_max: int, spec) -> None:
        """Recompute frames ``from_frame ..``, adopting the old suffix when
        the trajectory reconverges.

        ``changed_max`` is the last frame whose inputs differ from what the
        existing records were computed under; a frame beyond it whose
        entering machine states match the old records' is the head of a
        suffix that would recompute identically, so the old records are
        kept verbatim.  ``spec`` is the decision packed into lane 1.
        """
        records = self.records
        active = self.active
        old_records = records[from_frame:]
        old_active = active[from_frame:]
        old_gvals = self._gvals[from_frame:]
        old_bvals = self._bvals[from_frame:]
        old_frontier = self._frontier[from_frame:]
        del records[from_frame:]
        del active[from_frame:]
        del self._gvals[from_frame:]
        del self._bvals[from_frame:]
        del self._frontier[from_frame:]
        num_frames = len(self.inputs)
        if from_frame == 0:
            unknown = ((0, 0),) * self.num_registers
            good_state, bad_state = unknown, unknown
        else:
            prev = records[from_frame - 1]
            lane = active[from_frame - 1]
            good_state = self._broadcast_lane(prev[_GN], lane)
            bad_state = self._broadcast_lane(prev[_BN], lane)
        step, sa1, sa0 = self.step, self.sa1, self.sa0
        memo = self._memo
        lane_equal = self._lane_equal
        cut = False
        simulated = 0
        # The cut-off may only adopt a *complete* suffix; a stale short
        # record list (the initial resim, or one ended by the detection
        # early-exit below) can never satisfy this.
        adoptable = len(old_records) == num_frames - from_frame
        for frame in range(from_frame, num_frames):
            offset = frame - from_frame
            if adoptable and frame > changed_max and offset > 0:
                # The frame's entering state is the just-appended record's
                # lane 0 (offset > 0 guarantees one exists).
                old_prev = old_records[offset - 1]
                old_lane = old_active[offset - 1]
                prev_new = records[-1]
                if lane_equal(
                    old_prev[_GN], old_lane, prev_new[_GN], 0
                ) and lane_equal(old_prev[_BN], old_lane, prev_new[_BN], 0):
                    # Reconverged: inputs from here on are unchanged and the
                    # entering states match what the old suffix was computed
                    # from, so recomputation would reproduce it exactly --
                    # including every derived value/frontier cache.
                    records.extend(old_records[offset:])
                    active.extend(old_active[offset:])
                    self._gvals.extend(old_gvals[offset:])
                    self._bvals.extend(old_bvals[offset:])
                    self._frontier.extend(old_frontier[offset:])
                    cut = True
                    break
            packed = self._pack_frame(frame, spec)
            key = (good_state, bad_state, packed)
            record = memo.get(key)
            if record is None:
                record = step(good_state, bad_state, packed, self.MASK, sa1, sa0)
                memo[key] = record
                # Only actual kernel evaluations count as simulation effort;
                # memo hits cost a dictionary probe, not a frame.
                simulated += 1
            records.append(record)
            active.append(0)
            self._gvals.append(None)
            self._bvals.append(None)
            self._frontier.append(None)
            good_state = record[_GN]
            bad_state = record[_BN]
            if record[_DET] & 1:
                # Lane 0 detects at this frame: the search returns before
                # asking about anything beyond it, and the next _resim's
                # completeness guard refuses to adopt the short suffix, so
                # the remaining frames are never needed.
                break
        if simulated:
            self.meter.note_simulation(
                frames=2 * simulated, lanes=2 * self.WIDTH * simulated
            )
        # A cut truncates lane 1's divergent trajectory, so the
        # speculation is only trusted when the whole suffix was simulated.
        self.spec = None if (cut or spec is None) else spec
        self._rebuild_cums(from_frame)

    def _rebuild_cums(self, from_frame: int) -> None:
        det_cum, eff_cum = self._det_cum, self._eff_cum
        del det_cum[from_frame:]
        del eff_cum[from_frame:]
        det = det_cum[from_frame - 1] if from_frame else 0
        eff = eff_cum[from_frame - 1] if from_frame else 0
        records, active = self.records, self.active
        for frame in range(from_frame, len(records)):
            record = records[frame]
            lane = active[frame]
            det |= (record[_DET] >> lane) & 1
            eff |= ((record[_VDIFF] | record[_SDIFF]) >> lane) & 1
            det_cum.append(det)
            eff_cum.append(eff)

    def resim_initial(self) -> None:
        self._resim(0, len(self.inputs), None)

    def resim_decision(self, frame: int, pi: int, value: Trit) -> None:
        self._resim(frame, frame, (frame, pi, value))

    def resim_flip(
        self, earliest: int, changed_max: int, frame: int, pi: int, value: Trit
    ) -> None:
        """Apply a flipped decision; reuse lane 1 when it speculated it.

        ``value`` is the decision's *original* value.  When the flip
        targets exactly the decision lane 1 speculated -- which implies it
        is the newest decision, so the other inputs still match what the
        lanes were simulated under -- the flipped trajectory is already in
        lane 1 and activating it costs no simulation.
        """
        if self.spec == (frame, pi, value):
            active = self.active
            for f in range(frame, len(active)):
                active[f] = 1
                self._gvals[f] = None
                self._bvals[f] = None
                self._frontier[f] = None
            self.spec = None
            self._rebuild_cums(frame)
            return
        self._resim(earliest, changed_max, None)

    # -- verdicts ----------------------------------------------------------

    def detected(self) -> bool:
        return bool(self._det_cum and self._det_cum[-1])

    def effect_exists(self) -> bool:
        return bool(self._eff_cum and self._eff_cum[-1])

    def prune(self) -> bool:
        record = self.records[-1]
        return bool((record[_SAME] >> self.active[-1]) & 1)

    # -- value accessors ---------------------------------------------------

    def good_value(self, frame: int, slot: int) -> Trit:
        """One slot's good-machine trit (sparse reads: no materialization)."""
        vals = self._gvals[frame]
        if vals is not None:
            return vals[slot]
        record = self.records[frame]
        bit = 1 << self.active[frame]
        if record[_GC][slot] & bit:
            return ONE if record[_GV][slot] & bit else ZERO
        return X

    def good_values(self, frame: int) -> Tuple[Trit, ...]:
        """All slots' good-machine trits, materialized once per frame."""
        vals = self._gvals[frame]
        if vals is None:
            record = self.records[frame]
            bit = 1 << self.active[frame]
            vals = tuple(
                ((ONE if value & bit else ZERO) if care & bit else X)
                for value, care in zip(record[_GV], record[_GC])
            )
            self._gvals[frame] = vals
        return vals

    def bad_values(self, frame: int) -> Tuple[Trit, ...]:
        vals = self._bvals[frame]
        if vals is None:
            record = self.records[frame]
            bit = 1 << self.active[frame]
            vals = tuple(
                ((ONE if value & bit else ZERO) if care & bit else X)
                for value, care in zip(record[_BV], record[_BC])
            )
            self._bvals[frame] = vals
        return vals

    def good_regs(self, frame: int) -> Tuple[Trit, ...]:
        """Register contents *entering* ``frame``."""
        if frame == 0:
            return self._unknown_regs
        return self._lane_trits(
            self.records[frame - 1][_GN], self.active[frame - 1]
        )

    def bad_regs(self, frame: int) -> Tuple[Trit, ...]:
        if frame == 0:
            return self._unknown_regs
        return self._lane_trits(
            self.records[frame - 1][_BN], self.active[frame - 1]
        )

    def frontier_cached(self, frame: int):
        return self._frontier[frame]

    def frontier_store(self, frame: int, entries) -> None:
        self._frontier[frame] = entries

    def frontier_frames(self) -> Iterable[int]:
        """Frames that can host D-frontier entries.

        A frontier entry needs a gate read with a provable good/bad
        difference; reads are either this frame's slot values (covered by
        ``vdiff``) or registers entering the frame (the previous frame's
        ``sdiff``).  Frames with neither mask bit set provably contribute
        nothing and are skipped -- the fault site's own consumer, whose
        difference lives in the injected reads rather than slot values, is
        appended separately from the excited frames by the caller, exactly
        as in the scalar scan.
        """
        records, active = self.records, self.active
        entering = 0  # frame 0 enters from the all-X state: no difference
        for frame in range(len(records)):
            record = records[frame]
            lane = active[frame]
            if entering or ((record[_VDIFF] >> lane) & 1):
                yield frame
            entering = (record[_SDIFF] >> lane) & 1


class PodemEngine:
    """Targets single faults on one circuit.

    ``kernel`` selects the resimulation machinery: ``"dual"`` (default)
    for the packed dual-machine kernel, ``"scalar"`` for the baseline
    per-fault scalar steppers.  Both produce bit-identical results.

    ``guidance`` optionally supplies a
    :class:`~repro.atpg.guidance.GuidancePolicy` whose value-aware
    controllability/observability tables replace the built-in structural
    heuristics for D-frontier and objective-candidate ranking, and whose
    exact register-distance fixpoints frame-gate the search (escalation
    levels, excitation frames and frontier entries provably infeasible
    within the window are skipped).  With ``guidance=None`` every choice
    -- walk order, cost tables, tie-breaking -- is exactly the unguided
    engine's.
    """

    def __init__(
        self,
        circuit: Circuit,
        kernel: str = "dual",
        backend: str = "auto",
        guidance=None,
    ):
        if kernel not in PODEM_KERNELS:
            raise ValueError(
                f"unknown kernel {kernel!r}; expected one of {PODEM_KERNELS}"
            )
        from repro.simulation.backends import resolve_backend

        self.circuit = circuit
        self.kernel = kernel
        # PODEM's dual kernel packs exactly two lanes per call, so the numpy
        # word form has no lane parallelism to amortize its dispatch cost:
        # ``auto`` therefore resolves to bigints here (unlike the wide
        # fault-simulation kernel).  An explicit ``numpy`` request gets the
        # bit-identical word execution for cross-backend validation.
        self.backend = "bigint" if backend == "auto" else resolve_backend(backend)
        self.compiled = compiled_circuit(circuit)
        self.good_step = fast_stepper(circuit).step
        self.dual = dual_fast_stepper(circuit) if kernel == "dual" else None
        self.dual_step = None
        if self.dual is not None:
            self.dual_step = (
                self.dual.word_step()
                if self.backend == "numpy"
                else self.dual.step_dual
            )
        self.num_inputs = len(circuit.input_names)
        self.num_registers = self.compiled.num_registers
        self._pi_index = {name: i for i, name in enumerate(circuit.input_names)}
        self._names = circuit.topo_order()
        self._gate_ops = tuple(
            op for op in self.compiled.ops if op.kind is NodeKind.GATE
        )
        # Adjacency snapshots: Circuit.in_edges materializes a fresh list
        # per call, which dominates backtrace cost on the hot path.
        self._nodes = circuit.nodes
        self._in_edges_of = {
            name: tuple(circuit.in_edges(name)) for name in circuit.nodes
        }
        self._slot_of = self.compiled.slot_of
        # Per-fault step memo; generate() replaces it for each new target.
        self._step_memo: Dict[Tuple, Tuple] = {}
        self._depth = self._static_depths()
        self._control_cost = self._static_controllability()
        self._bt_table = self._compile_backtrace_table()
        self.guidance = guidance
        self._g_observe = guidance.observe if guidance is not None else None
        self._g_obs_regs = (
            self._compile_obs_regs(guidance) if guidance is not None else None
        )

    def _compile_obs_regs(self, guidance) -> Dict[str, int]:
        """Minimum register crossings from each node's output to a primary
        output, folded from the policy's exact per-edge ``pin_regs``
        distances.  Used to frame-gate D-frontier entries: an effect at a
        gate's output at frame ``f`` is observed no earlier than frame
        ``f + obs_regs[gate]``."""
        big = 10 ** 6
        obs: Dict[str, int] = {}
        pin_regs = guidance.scoap.pin_regs
        for edge in self.circuit.edges:
            pulled = edge.weight + pin_regs.get(edge.index, big)
            if pulled < obs.get(edge.source, big):
                obs[edge.source] = pulled
        return obs

    def _compile_backtrace_table(self) -> Dict[str, Tuple]:
        """Per-node dispatch records for the backtrace hot loop.

        Backtrace walks thousands of node hops per fault; resolving each
        hop through ``nodes[...]`` / ``in_edges`` / ``slot_of`` /
        ``_control_cost`` dictionary chains every time dominates its cost.
        Each record bakes the whole decision into one tuple:

        * ``(0, pi_index)`` -- primary input;
        * ``(1,)`` -- constant (objective unreachable);
        * ``(2, source, weight)`` -- fanout/output pass-through;
        * ``(3, invert, base, inputs)`` -- gate, where ``invert`` is the
          output inversion, ``base`` codes the input requirement (0 =
          AND-like, 1 = OR-like, 2 = pass the desired value through) and
          ``inputs`` is ``(source, slot, weight, control_cost)`` per fanin
          in circuit order (the order the original walk examined them in,
          so cost ties break identically).
        """
        table: Dict[str, Tuple] = {}
        slot_of = self._slot_of
        cost = self._control_cost
        for name, node in self.circuit.nodes.items():
            kind = node.kind
            if kind is NodeKind.INPUT:
                table[name] = (0, self._pi_index[name])
            elif kind in (NodeKind.CONST0, NodeKind.CONST1):
                table[name] = (1,)
            elif kind in (NodeKind.FANOUT, NodeKind.OUTPUT):
                edges = self._in_edges_of[name]
                if edges:
                    table[name] = (2, edges[0].source, edges[0].weight)
                else:
                    table[name] = (1,)  # floating sink: unreachable
            else:
                gate_type = node.gate_type
                invert = gate_type in (
                    GateType.NOT, GateType.NAND, GateType.NOR, GateType.XNOR
                )
                if gate_type in (GateType.AND, GateType.NAND):
                    base = 0
                elif gate_type in (GateType.OR, GateType.NOR):
                    base = 1
                else:
                    base = 2
                gate_inputs = tuple(
                    (
                        edge.source,
                        slot_of[edge.source],
                        edge.weight,
                        cost.get(edge.source, 10 ** 6),
                    )
                    for edge in self._in_edges_of[name]
                )
                table[name] = (3, invert, base, gate_inputs)
        return table

    def _static_depths(self) -> Dict[str, int]:
        """Static distance-to-output estimate used to rank D-frontier gates."""
        depth: Dict[str, int] = {}
        for name in reversed(self.circuit.topo_order()):
            out_edges = self.circuit.out_edges(name)
            if not out_edges:
                depth[name] = 0 if self.circuit.node(name).kind is NodeKind.OUTPUT else 999
                continue
            depth[name] = min(depth.get(e.sink, 999) + 1 for e in out_edges)
        return depth

    def _static_controllability(self) -> Dict[str, int]:
        """SCOAP-flavoured cost of setting a node from the primary inputs.

        Registers are expensive (they push the objective a frame earlier),
        so backtrace prefers purely combinational paths to PIs and never
        cycles around state feedback loops.  Computed as a shortest-path
        fixpoint over the cyclic graph.
        """
        BIG = 10 ** 6
        cost: Dict[str, int] = {}
        for name, node in self.circuit.nodes.items():
            cost[name] = 0 if node.kind is NodeKind.INPUT else BIG
        for _ in range(len(self.circuit.nodes)):
            changed = False
            for name in self.circuit.topo_order():
                node = self.circuit.node(name)
                if node.kind is NodeKind.INPUT:
                    continue
                in_edges = self.circuit.in_edges(name)
                if not in_edges:
                    continue  # constants stay expensive
                best = min(
                    cost[e.source] + 1 + 100 * e.weight for e in in_edges
                )
                if best < cost[name]:
                    cost[name] = best
                    changed = True
            if not changed:
                break
        return cost

    # -- public API ----------------------------------------------------------

    def generate(
        self,
        fault: StuckAtFault,
        meter: EffortMeter,
        max_frames: Optional[int] = None,
        deadline: Optional[float] = None,
    ) -> PodemResult:
        """Try to find a test sequence for ``fault``.

        ``deadline`` (a ``time.perf_counter`` timestamp) caps the effort
        spent on this single fault, on top of the global budget.

        Every attempt is bracketed by the meter's ``begin_fault`` /
        ``end_fault`` in ``try/finally``, so the per-fault effort row is
        flushed on *every* exit path -- a budget-aborted fault records its
        partial counters instead of vanishing from the training data.
        """
        meter.begin_fault(fault)
        result: Optional[PodemResult] = None
        try:
            result = self._generate(fault, meter, max_frames, deadline)
            return result
        finally:
            if result is None:
                status = "abort"  # exception path: flush partial effort
            elif result.detected:
                status = "det"
            elif result.aborted:
                status = "abort"
            else:
                status = "exhausted"
            meter.end_fault(status)

    def _generate(
        self,
        fault: StuckAtFault,
        meter: EffortMeter,
        max_frames: Optional[int],
        deadline: Optional[float],
    ) -> PodemResult:
        import time as _time

        limit = max_frames or meter.budget.max_frames
        # Fresh per-fault step memo for the dual kernel: keyed by (entering
        # good state, entering bad state, packed inputs) -- everything else
        # the generated step reads (plane mask, injection masks) is fixed
        # for the duration of one fault.  Sharing it across escalation
        # levels makes each deeper level's prefix frames free.
        self._step_memo = {}
        if self.kernel == "scalar":
            # The baseline pays a per-fault code generation + exec here;
            # the dual kernel's runtime injection masks avoid it entirely.
            faulty_step = FastStepper(
                self.circuit, fault=fault, compiled=self.compiled
            ).step
        else:
            faulty_step = None
        total_backtracks = 0
        # Geometric time-frame escalation with a *fresh* backtrack budget
        # per depth level.  Total effort per aborted fault therefore scales
        # with the unrolling depth -- which scales with the flip-flop
        # count.  This is the cost model of iterative-deepening sequential
        # ATPG: circuits retimed to several times more registers cost
        # several times more per fault, the paper's Table II effect.
        levels = []
        frames = 1
        while frames < limit:
            levels.append(frames)
            frames *= 2
        levels.append(limit)
        if self.guidance is not None:
            # Sequential-depth pruning.  ``min_frames`` is a sound lower
            # bound on the window any test for this fault needs (with an
            # all-X initial state no signal crosses k registers in fewer
            # than k frames), so a bound beyond ``limit`` means no test
            # exists in the window at all -- report that as exhausted,
            # not aborted, without simulating a single frame.  For the
            # rest the guided engine drops the ladder entirely and
            # searches the full window once: the ladder exists to find
            # short tests cheaply, but the faults that reach the
            # deterministic phase survived the random walks precisely
            # because they need deep windows, so intermediate rungs
            # mostly burn a fresh backtrack budget each proving what the
            # final rung re-proves anyway.  (Measured on the Table II
            # set: the single-rung ladder beats both the full geometric
            # ladder and a probe-then-limit two-rung variant on every
            # circuit.)
            bound = self.guidance.scoap.min_frames.get(
                fault.line.edge_index, 1
            )
            if bound > limit:
                return PodemResult(False, None, 0, False, limit)
            levels = [limit]
        aborted_any = False
        for frames in levels:
            if meter.out_of_time() or (
                deadline is not None and _time.perf_counter() >= deadline
            ):
                return PodemResult(False, None, total_backtracks, True, frames)
            found, used, aborted = self._search(
                fault,
                faulty_step,
                frames,
                meter.budget.backtracks_per_fault,
                meter,
                deadline,
            )
            total_backtracks += used
            if found is not None:
                return PodemResult(True, found, total_backtracks, False, frames)
            aborted_any = aborted_any or aborted
        return PodemResult(False, None, total_backtracks, aborted_any, levels[-1])

    # -- search over one frame count -------------------------------------------

    def _search(
        self,
        fault: StuckAtFault,
        faulty_step,
        frames: int,
        backtrack_limit: int,
        meter: EffortMeter,
        deadline: Optional[float] = None,
    ):
        import time as _time

        inputs: List[List[Trit]] = [
            [X] * self.num_inputs for _ in range(frames)
        ]
        decisions: List[Tuple[int, int, Trit, bool]] = []  # (frame, pi, value, flipped)
        backtracks = 0
        if self.kernel == "dual":
            machine = _DualMachine(self, fault, inputs, meter)
        else:
            machine = _ScalarMachine(self, faulty_step, inputs, meter)
        machine.resim_initial()

        while True:
            if meter.out_of_time() or (
                deadline is not None and _time.perf_counter() >= deadline
            ):
                return None, backtracks, True
            if machine.detected():
                return [tuple(v if v != X else ZERO for v in frame) for frame in inputs], backtracks, False
            prune = machine.prune()
            assignment = None
            if not prune:
                for objective in self._objective_candidates(
                    fault, machine, frames
                ):
                    assignment = self._backtrace(objective, machine, inputs)
                    if assignment is not None:
                        break
            if assignment is None:
                # Conflict or no way forward: chronological backtracking.
                # Track the earliest frame touched by the pops (the resim
                # point) and the latest (beyond which cached frame records
                # stay valid for the incremental cut-off).
                earliest = frames
                changed_max = 0
                while decisions:
                    frame, pi, value, flipped = decisions.pop()
                    inputs[frame][pi] = X
                    earliest = min(earliest, frame)
                    changed_max = max(changed_max, frame)
                    if not flipped:
                        backtracks += 1
                        meter.note_backtrack()
                        if backtracks >= backtrack_limit:
                            return None, backtracks, True
                        inputs[frame][pi] = t_not(value)
                        decisions.append((frame, pi, t_not(value), True))
                        machine.resim_flip(earliest, changed_max, frame, pi, value)
                        break
                else:
                    return None, backtracks, False  # search space exhausted
                continue
            frame, pi, value = assignment
            meter.note_objective()
            inputs[frame][pi] = value
            decisions.append((frame, pi, value, False))
            machine.resim_decision(frame, pi, value)

    # -- objectives ---------------------------------------------------------------

    def _line_source(self, line: LineRef, frame: int):
        """(node, frame) whose output drives this line, or None pre-window."""
        edge = self.circuit.edge(line.edge_index)
        source_frame = frame - (line.segment - 1)
        if source_frame < 0:
            return None
        return edge.source, source_frame

    def _excited_frames(self, fault: StuckAtFault, machine, frames: int) -> List[int]:
        """Frames where the good machine provably drives the faulted line to
        the complement of the stuck value (the faulty line is forced, so an
        effect exists at the line in those frames)."""
        desired = t_not(fault.value)
        edge = self.circuit.edge(fault.line.edge_index)
        slot = self.compiled.slot_of[edge.source]
        excited = []
        offset = fault.line.segment - 1
        for frame in range(frames):
            source_frame = frame - offset
            if source_frame < 0:
                continue
            if machine.good_value(source_frame, slot) == desired:
                excited.append(frame)
        return excited

    def _objective_candidates(self, fault, machine, frames):
        """Objectives to try, in preference order.

        Excitation candidates target the *earliest* frames first: an
        effect created early has the rest of the window to propagate
        (exciting only in the last frame leaves no room to observe faults
        whose effect must first traverse registers).
        """
        excited = self._excited_frames(fault, machine, frames)
        candidates = []
        if not excited and not machine.effect_exists():
            edge = self.circuit.edge(fault.line.edge_index)
            desired = t_not(fault.value)
            slot = self.compiled.slot_of[edge.source]
            latest = frames - 1 - (fault.line.segment - 1)
            earliest = 0
            if self.guidance is not None:
                # Frame-gate the excitation window with the exact register
                # distances behind ``min_frames``: the driver is provably X
                # before frame ``known[source]``, and an effect excited at
                # frame f still needs the edge's own registers plus the
                # cheapest register path from the sink pin to an output
                # inside the window -- candidates outside [earliest,
                # latest] cannot be part of any test, only of wasted
                # decisions.
                scoap = self.guidance.scoap
                earliest = min(scoap.known.get(edge.source, 0), frames)
                latest = min(
                    latest,
                    frames
                    - 1
                    - edge.weight
                    - scoap.pin_regs.get(edge.index, 0),
                )
            for target_frame in range(earliest, latest + 1):
                if machine.good_value(target_frame, slot) == X:
                    candidates.append((edge.source, desired, target_frame))
            return candidates
        # Propagation: D-frontier gates closest to an output first; within
        # a gate, the cheapest-to-control unknown side inputs first.
        # Guided, the frontier ranks by the policy's observability and the
        # side inputs by value-aware controllability, both with explicit
        # (score, name, frame) tie-breaks so guided runs reproduce across
        # processes and Python versions.
        frontier = self._d_frontier(fault, machine, excited)
        guided = self.guidance is not None
        if guided:
            # Frame-gate the frontier: a difference at ``gate`` in frame
            # ``f`` still needs ``obs_regs[gate]`` register crossings to
            # reach an output, so entries with ``f + obs_regs`` past the
            # window cannot be observed -- propagating through them is
            # provably wasted work.
            obs_regs = self._g_obs_regs
            horizon = frames - 1
            frontier = [
                item
                for item in frontier
                if item[1] + obs_regs.get(item[0], 0) <= horizon
            ]
        if guided:
            observe = self._g_observe
            depth = self._depth
            frontier.sort(
                key=lambda item: (
                    observe.get(item[0], float("inf")),
                    depth.get(item[0], 999),
                    item[0],
                    item[1],
                )
            )
        else:
            frontier.sort(key=lambda item: self._depth.get(item[0], 999))
        slot_of = self._slot_of
        for gate_name, frame in frontier:
            node = self._nodes[gate_name]
            controlling = node.gate_type.controlling_value if node.gate_type else None
            non_controlling = (
                t_not(controlling) if controlling is not None else ONE
            )
            if guided:
                side_cost = (
                    self.guidance.cost1
                    if non_controlling == ONE
                    else self.guidance.cost0
                )
            gate_candidates = []
            for edge in self._in_edges_of[gate_name]:
                located = self._line_source(
                    LineRef(edge.index, edge.num_lines), frame
                )
                if located is None:
                    continue
                source, source_frame = located
                value = machine.good_value(source_frame, slot_of[source])
                if value != X:
                    continue
                if guided:
                    cost = (side_cost.get(source, float("inf")), source, source_frame)
                else:
                    cost = self._control_cost.get(source, 10 ** 6)
                gate_candidates.append(
                    (cost, (source, non_controlling, source_frame))
                )
            gate_candidates.sort(key=lambda item: item[0])
            candidates.extend(objective for _, objective in gate_candidates)
        return candidates

    def _frontier_for_frame(self, machine, frame: int) -> List[Tuple[str, int]]:
        """One frame's D-frontier entries (pure function of that frame)."""
        entries: List[Tuple[str, int]] = []
        names = self._names
        good_values = machine.good_values(frame)
        bad_values = machine.bad_values(frame)
        good_regs = machine.good_regs(frame)
        bad_regs = machine.bad_regs(frame)
        for op in self._gate_ops:
            out_good = good_values[op.slot]
            out_bad = bad_values[op.slot]
            if out_good != X and out_bad != X and out_good != out_bad:
                continue  # effect already through this gate
            if out_good != X and out_good == out_bad:
                continue  # blocked
            for read in op.reads:
                if read.from_register:
                    g_val = good_regs[read.index]
                    b_val = bad_regs[read.index]
                else:
                    g_val = good_values[read.index]
                    b_val = bad_values[read.index]
                if g_val != X and b_val != X and g_val != b_val:
                    entries.append((names[op.slot], frame))
                    break
        return entries

    def _d_frontier(self, fault, machine, excited_frames) -> List[Tuple[str, int]]:
        """Gates with a provable input difference and undecided output.

        The faulted line's own consumer is added explicitly for the frames
        where the line is excited: the injection happens at the consumer's
        read, so node values alone would miss it.
        """
        frontier: List[Tuple[str, int]] = []
        for frame in machine.frontier_frames():
            entries = machine.frontier_cached(frame)
            if entries is None:
                entries = self._frontier_for_frame(machine, frame)
                machine.frontier_store(frame, entries)
            frontier.extend(entries)
        fault_edge = self.circuit.edge(fault.line.edge_index)
        if fault.line.segment == fault_edge.num_lines:
            sink = self.circuit.node(fault_edge.sink)
            if sink.kind is NodeKind.GATE:
                for frame in excited_frames:
                    frontier.append((fault_edge.sink, frame))
        return frontier

    # -- backtrace -------------------------------------------------------------------

    def _backtrace(self, objective, machine, inputs):
        """Walk an objective back to an unassigned primary input.

        Runs entirely on the precompiled dispatch table (see
        :meth:`_compile_backtrace_table`); the walk order, the cost
        tie-breaking and therefore the chosen assignment are identical to
        a direct walk over the circuit structures.  Guided runs use the
        same walk: guidance steers *which* objectives are tried and in
        what order (:meth:`_objective_candidates`), not how one objective
        maps to a primary input -- a value-aware walk variant was
        measured to win on some circuits and lose as much on others,
        while the shared walk keeps guided effort uniformly below
        unguided.
        """
        node_name, value, frame = objective
        table = self._bt_table
        good_value = machine.good_value
        for _ in range(10_000):
            if frame < 0:
                return None
            entry = table[node_name]
            tag = entry[0]
            if tag == 3:
                # GATE: translate the desired output into an input
                # objective.  Output 1 of an AND-like base needs all inputs
                # 1, output 0 needs one input 0; dually for OR-like.  The
                # XOR family passes the desired value through (heuristic).
                desired = t_not(value) if entry[1] else value
                chosen_name = None
                chosen_frame = 0
                chosen_cost = None
                for source, slot, weight, source_cost in entry[3]:
                    source_frame = frame - weight
                    if source_frame < 0:
                        continue
                    if good_value(source_frame, slot) != X:
                        continue
                    if chosen_cost is None or source_cost < chosen_cost:
                        chosen_name = source
                        chosen_frame = source_frame
                        chosen_cost = source_cost
                if chosen_name is None:
                    return None
                node_name = chosen_name
                frame = chosen_frame
                base = entry[2]
                if base == 0:
                    value = ONE if desired == ONE else ZERO
                elif base == 1:
                    value = ZERO if desired == ZERO else ONE
                else:
                    value = desired
            elif tag == 2:
                node_name = entry[1]
                frame -= entry[2]
            elif tag == 0:
                pi = entry[1]
                if inputs[frame][pi] != X:
                    return None  # already pinned: objective unreachable
                return (frame, pi, value)
            else:
                return None  # constant: unreachable
        return None

__all__ = ["PODEM_KERNELS", "PodemEngine", "PodemResult"]
