"""Effort budgets and statistics for the ATPG engine.

The paper measures ATPG cost in DECstation 3100 CPU seconds with HITEC's
abort limits.  Here cost is wall-clock seconds plus backtrack counts; the
budget caps both, and Table II's *CPU ratio* column is reproduced as the
ratio of effort spent under identical budgets.

For the multiprocess deterministic phase (``repro.atpg.parallel``) the
wall-clock budget is *shared* across the pool: the parent snapshots its
remaining seconds when a chunk is dispatched and each worker meters its
own chunk against that allowance via :attr:`EffortMeter.cap_seconds`, so
the pool as a whole never outspends the budget a serial run would get.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional


@dataclass(frozen=True)
class AtpgBudget:
    """Caps for one ATPG run."""

    total_seconds: float = 30.0
    seconds_per_fault: float = 0.25
    backtracks_per_fault: int = 400
    max_frames: int = 12
    frames_cap: int = 64
    random_sequences: int = 64
    random_length: int = 24
    random_stale_limit: int = 12
    random_batch: int = 8
    sync_samples: int = 8
    seed: int = 1995

    def scaled(self, factor: float) -> "AtpgBudget":
        """A proportionally larger/smaller budget."""
        return AtpgBudget(
            total_seconds=self.total_seconds * factor,
            seconds_per_fault=self.seconds_per_fault * factor,
            backtracks_per_fault=max(1, int(self.backtracks_per_fault * factor)),
            max_frames=self.max_frames,
            frames_cap=self.frames_cap,
            random_sequences=max(1, int(self.random_sequences * factor)),
            random_length=self.random_length,
            random_stale_limit=self.random_stale_limit,
            random_batch=self.random_batch,
            sync_samples=self.sync_samples,
            seed=self.seed,
        )


@dataclass
class EffortMeter:
    """Tracks spent effort against a budget.

    ``cap_seconds`` optionally tightens the wall-clock allowance below
    ``budget.total_seconds`` -- a pool worker is handed the parent's
    *remaining* seconds as its cap, so a late-dispatched chunk cannot run
    the full budget again on its own clock.
    """

    budget: AtpgBudget
    cap_seconds: Optional[float] = None
    started: float = field(default_factory=time.perf_counter)
    backtracks: int = 0
    simulations: int = 0
    frames_simulated: int = 0
    lanes_evaluated: int = 0

    def _limit(self) -> float:
        if self.cap_seconds is None:
            return self.budget.total_seconds
        return min(self.budget.total_seconds, self.cap_seconds)

    def elapsed(self) -> float:
        return time.perf_counter() - self.started

    def remaining(self) -> float:
        """Wall-clock seconds left before the meter runs out (never < 0)."""
        return max(0.0, self._limit() - self.elapsed())

    def out_of_time(self) -> bool:
        return self.elapsed() >= self._limit()

    def note_backtrack(self) -> None:
        self.backtracks += 1

    def note_simulation(self, frames: int = 1, lanes: Optional[int] = None) -> None:
        """Record one simulation call covering ``frames`` machine-frames.

        ``frames`` counts time frames multiplied by machines stepped (the
        fault-free and the faulty machine each count), so the telemetry
        reflects real work rather than call counts -- a single PODEM
        resimulation call may recompute the whole unrolled window.
        ``lanes`` counts lane-frames: with a bit-packed kernel one call
        evaluates several packed branch lanes per machine-frame; it
        defaults to ``frames`` (one lane per machine-frame, the scalar
        case).
        """
        self.simulations += 1
        self.frames_simulated += frames
        self.lanes_evaluated += frames if lanes is None else lanes


__all__ = ["AtpgBudget", "EffortMeter"]
