"""Effort budgets and statistics for the ATPG engine.

The paper measures ATPG cost in DECstation 3100 CPU seconds with HITEC's
abort limits.  Here cost is wall-clock seconds plus backtrack counts; the
budget caps both, and Table II's *CPU ratio* column is reproduced as the
ratio of effort spent under identical budgets.

For the multiprocess deterministic phase (``repro.atpg.parallel``) the
wall-clock budget is *shared* across the pool: the parent snapshots its
remaining seconds when a chunk is dispatched and each worker meters its
own chunk against that allowance via :attr:`EffortMeter.cap_seconds`, so
the pool as a whole never outspends the budget a serial run would get.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass(frozen=True)
class AtpgBudget:
    """Caps for one ATPG run."""

    total_seconds: float = 30.0
    seconds_per_fault: float = 0.25
    backtracks_per_fault: int = 400
    max_frames: int = 12
    frames_cap: int = 64
    random_sequences: int = 64
    random_length: int = 24
    random_stale_limit: int = 12
    random_batch: int = 8
    sync_samples: int = 8
    seed: int = 1995

    def scaled(self, factor: float) -> "AtpgBudget":
        """A proportionally larger/smaller budget."""
        return AtpgBudget(
            total_seconds=self.total_seconds * factor,
            seconds_per_fault=self.seconds_per_fault * factor,
            backtracks_per_fault=max(1, int(self.backtracks_per_fault * factor)),
            max_frames=self.max_frames,
            frames_cap=self.frames_cap,
            random_sequences=max(1, int(self.random_sequences * factor)),
            random_length=self.random_length,
            random_stale_limit=self.random_stale_limit,
            random_batch=self.random_batch,
            sync_samples=self.sync_samples,
            seed=self.seed,
        )


@dataclass
class FaultEffort:
    """Per-fault effort record: one row of the guidance training dataset.

    ``fault_key`` is ``(edge_index, segment, stuck_value)`` -- the stable
    identity every ranking sort ties on.  ``status`` is ``"det"``
    (detected), ``"abort"`` (budget-aborted mid-search), ``"exhausted"``
    (search space exhausted, untestable at this depth) or ``"budget"``
    (never targeted: the shared wall clock expired first).  Counters are
    the deltas of the owning :class:`EffortMeter` over the attempt, so a
    budget-aborted fault still flushes its *partial* effort instead of
    being dropped -- partial rows are exactly the hard-fault examples the
    meta-predictor needs.
    """

    fault_key: Tuple[int, int, int]
    status: str
    seconds: float = 0.0
    backtracks: int = 0
    simulations: int = 0
    frames_simulated: int = 0
    lanes_evaluated: int = 0
    objective_choices: int = 0


@dataclass
class EffortMeter:
    """Tracks spent effort against a budget.

    ``cap_seconds`` optionally tightens the wall-clock allowance below
    ``budget.total_seconds`` -- a pool worker is handed the parent's
    *remaining* seconds as its cap, so a late-dispatched chunk cannot run
    the full budget again on its own clock.

    Besides the run-wide counters the meter keeps per-fault
    :class:`FaultEffort` rows: :meth:`begin_fault` snapshots the counters,
    :meth:`end_fault` flushes the deltas.  The PODEM engine brackets every
    attempt in ``try/finally``, so rows survive budget aborts.
    """

    budget: AtpgBudget
    cap_seconds: Optional[float] = None
    started: float = field(default_factory=time.perf_counter)
    backtracks: int = 0
    simulations: int = 0
    frames_simulated: int = 0
    lanes_evaluated: int = 0
    objective_choices: int = 0
    fault_rows: List[FaultEffort] = field(default_factory=list)
    _fault_mark: Optional[Tuple[Tuple[int, int, int], float, int, int, int, int, int]] = None

    def _limit(self) -> float:
        if self.cap_seconds is None:
            return self.budget.total_seconds
        return min(self.budget.total_seconds, self.cap_seconds)

    def elapsed(self) -> float:
        return time.perf_counter() - self.started

    def remaining(self) -> float:
        """Wall-clock seconds left before the meter runs out (never < 0)."""
        return max(0.0, self._limit() - self.elapsed())

    def out_of_time(self) -> bool:
        return self.elapsed() >= self._limit()

    def note_backtrack(self) -> None:
        self.backtracks += 1

    def note_simulation(self, frames: int = 1, lanes: Optional[int] = None) -> None:
        """Record one simulation call covering ``frames`` machine-frames.

        ``frames`` counts time frames multiplied by machines stepped (the
        fault-free and the faulty machine each count), so the telemetry
        reflects real work rather than call counts -- a single PODEM
        resimulation call may recompute the whole unrolled window.
        ``lanes`` counts lane-frames: with a bit-packed kernel one call
        evaluates several packed branch lanes per machine-frame; it
        defaults to ``frames`` (one lane per machine-frame, the scalar
        case).
        """
        self.simulations += 1
        self.frames_simulated += frames
        self.lanes_evaluated += frames if lanes is None else lanes

    def note_objective(self) -> None:
        """Record one accepted backtrace objective (a PI assignment)."""
        self.objective_choices += 1

    @staticmethod
    def fault_key(fault) -> Tuple[int, int, int]:
        return (fault.line.edge_index, fault.line.segment, fault.value)

    def begin_fault(self, fault) -> None:
        """Snapshot the counters before one PODEM attempt."""
        self._fault_mark = (
            self.fault_key(fault),
            time.perf_counter(),
            self.backtracks,
            self.simulations,
            self.frames_simulated,
            self.lanes_evaluated,
            self.objective_choices,
        )

    def end_fault(self, status: str) -> None:
        """Flush the attempt's counter deltas as a :class:`FaultEffort`.

        Idempotent against a missing :meth:`begin_fault` (no mark, no
        row), so callers can keep it in a ``finally`` block.
        """
        if self._fault_mark is None:
            return
        key, t0, bt, sim, frames, lanes, obj = self._fault_mark
        self._fault_mark = None
        self.fault_rows.append(
            FaultEffort(
                fault_key=key,
                status=status,
                seconds=time.perf_counter() - t0,
                backtracks=self.backtracks - bt,
                simulations=self.simulations - sim,
                frames_simulated=self.frames_simulated - frames,
                lanes_evaluated=self.lanes_evaluated - lanes,
                objective_choices=self.objective_choices - obj,
            )
        )

    def skip_fault(self, fault) -> None:
        """Record a fault the wall clock expired before targeting."""
        self.fault_rows.append(
            FaultEffort(fault_key=self.fault_key(fault), status="budget")
        )


__all__ = ["AtpgBudget", "EffortMeter", "FaultEffort"]
