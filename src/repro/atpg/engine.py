"""The full ATPG engine: random phase + deterministic PODEM phase.

Mirrors the two-phase organization of HITEC-era tools:

1. **Random phase** -- weighted-random test sequences are generated in
   batches and fault-simulated together (PROOFS-style, with dropping) in a
   single bit-parallel pass per batch; sequences that detect new faults
   join the test set, and the phase ends after a run of unproductive
   sequences or when its budget share is spent.
2. **Deterministic phase** -- every remaining fault is targeted by the
   sequential PODEM engine under a per-fault backtrack limit and a global
   wall-clock budget.  Sequences found are fault-simulated against the
   remaining faults to drop collateral detections.  The phase runs either
   in-process (``engine="serial"``) or partitioned across a pool of PODEM
   worker processes (``engine="process"``, see :mod:`repro.atpg.parallel`);
   both produce the same detected/untestable/aborted partition and the
   same test set whenever the wall-clock limits are not binding, because
   worker results are replayed in fault-queue order on the parent.

The result reports fault coverage (%FC), fault efficiency (%FE = detected
plus proven-untestable faults) and spent effort (seconds, backtracks) --
the quantities of the paper's Table II.  Untestability proofs here are
structural only (faults with no path to any primary output); HITEC's
sequential redundancy identification is out of scope, so FE is a slightly
conservative lower bound.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.atpg.budget import AtpgBudget, EffortMeter, FaultEffort
from repro.atpg.guidance import GuidancePolicy, fault_sort_key, make_policy
from repro.atpg.parallel import (
    FaultOutcome,
    default_workers,
    iter_podem_partitioned,
)
from repro.atpg.podem import PODEM_KERNELS, PodemEngine
from repro.circuit.netlist import Circuit, LineRef
from repro.faults.collapse import collapse_faults
from repro.faults.model import StuckAtFault
from repro.faultsim.parallel import parallel_fault_simulate
from repro.logic.three_valued import X
from repro.simulation.backends import resolve_backend
from repro.simulation.cache import vector_fast_stepper
from repro.simulation.codegen import FastStepper
from repro.simulation.vector_codegen import VectorFastStepper, rail_pair_trit
from repro.testset.model import TestSet

ATPG_ENGINES = ("serial", "process", "auto")

#: Below this many deterministic targets a process pool cannot amortize its
#: per-worker initialization (circuit pickle + cache warm-up + kernel exec).
MIN_POOL_FAULTS = 16


def choose_engine(
    num_faults: int,
    workers: Optional[int] = None,
    cpus: Optional[int] = None,
) -> Tuple[str, str]:
    """Pick the deterministic-phase engine for an ``engine="auto"`` run.

    Returns ``(engine, reason)``.  The pool only pays off when there are
    both cores to spread over and enough targeted faults to amortize the
    per-worker warm-up, so single-CPU hosts and small fault partitions
    fall back to the serial loop.
    """
    if cpus is None:
        cpus = os.cpu_count() or 1
    if cpus <= 1:
        return "serial", f"auto: single cpu (cpus={cpus})"
    if num_faults < MIN_POOL_FAULTS:
        return (
            "serial",
            f"auto: fault partition below threshold "
            f"({num_faults} < {MIN_POOL_FAULTS})",
        )
    pool = workers if workers is not None else default_workers()
    return (
        "process",
        f"auto: {num_faults} faults across {pool} workers (cpus={cpus})",
    )


@dataclass
class AtpgResult:
    """Outcome of one ATPG run (one Table II cell group)."""

    circuit_name: str
    test_set: TestSet
    num_faults: int
    detected: Set[StuckAtFault]
    untestable: Set[StuckAtFault]
    aborted: Set[StuckAtFault]
    cpu_seconds: float
    backtracks: int
    random_detected: int
    deterministic_detected: int
    search_exhausted: int = 0
    budget_aborted: int = 0
    random_seconds: float = 0.0
    deterministic_seconds: float = 0.0
    engine: str = "serial"
    workers: int = 1
    kernel: str = "dual"
    engine_reason: str = ""
    simulations: int = 0
    frames_simulated: int = 0
    lanes_evaluated: int = 0
    guidance: str = "off"
    objective_choices: int = 0
    # Per-fault effort rows (the guidance training dataset), in queue
    # order.  Transient telemetry: not part of the persisted artifact.
    fault_rows: List[FaultEffort] = field(default_factory=list)

    @property
    def fault_coverage(self) -> float:
        """%FC: detected / total."""
        if not self.num_faults:
            return 100.0
        return 100.0 * len(self.detected) / self.num_faults

    @property
    def fault_efficiency(self) -> float:
        """%FE: (detected + proven untestable) / total."""
        if not self.num_faults:
            return 100.0
        return 100.0 * (len(self.detected) + len(self.untestable)) / self.num_faults

    def summary(self) -> str:
        return (
            f"{self.circuit_name}: FC {self.fault_coverage:.1f}% "
            f"FE {self.fault_efficiency:.1f}% "
            f"({len(self.detected)}/{self.num_faults} detected, "
            f"{len(self.aborted)} aborted) in {self.cpu_seconds:.2f}s, "
            f"{self.backtracks} backtracks"
        )


def structurally_untestable(circuit: Circuit) -> Set[StuckAtFault]:
    """Faults on lines with no structural path to any primary output.

    Observability is propagated backward over *all* edges (registers
    included) to a fixpoint, so feedback loops are handled.
    """
    observable: Set[str] = {
        name
        for name, node in circuit.nodes.items()
        if node.kind.value == "output"
    }
    frontier = list(observable)
    while frontier:
        name = frontier.pop()
        for edge in circuit.in_edges(name):
            if edge.source not in observable:
                observable.add(edge.source)
                frontier.append(edge.source)
    untestable: Set[StuckAtFault] = set()
    for edge in circuit.edges:
        if edge.sink not in observable:
            for segment in range(1, edge.num_lines + 1):
                untestable.add(StuckAtFault(LineRef(edge.index, segment), 0))
                untestable.add(StuckAtFault(LineRef(edge.index, segment), 1))
    return untestable


def _synchronizing_walk(
    stepper,
    rng: random.Random,
    budget: AtpgBudget,
    num_inputs: int,
) -> List[Tuple[int, ...]]:
    """One weighted-random sequence biased toward synchronizing, then touring.

    While flip-flops are unknown, a few candidate vectors are sampled each
    cycle and the one resolving the most unknowns wins (greedy structural
    synchronization).  Once synchronized, vectors are drawn with
    *per-sequence per-input weights* -- the classic weighted-random-pattern
    technique.  Without it, an input that resets or re-synchronizes the
    machine fires every other cycle under uniform vectors and the walk
    never tours the deep states.

    Accepts the bit-parallel :class:`VectorFastStepper` (candidate vectors
    of one cycle are evaluated pattern-parallel in a single compiled step),
    the scalar :class:`FastStepper`, or the reference
    ``SequentialSimulator``.  All three consume the RNG identically and
    pick the first candidate with the fewest unknowns, so the emitted
    sequence is the same regardless of the engine.
    """
    if isinstance(stepper, VectorFastStepper):
        return _synchronizing_walk_vector(stepper, rng, budget, num_inputs)

    weights = [rng.choice((0.05, 0.2, 0.5, 0.8, 0.95)) for _ in range(num_inputs)]
    state = stepper.unknown_state()
    # Accept both the code-generated stepper (returns a plain tuple) and the
    # reference SequentialSimulator (returns a StepResult).
    raw_step = stepper.step
    if isinstance(stepper, FastStepper):
        step = lambda s, v: raw_step(s, v)[1]  # noqa: E731
    else:
        step = lambda s, v: raw_step(s, v).next_state  # noqa: E731
    sequence: List[Tuple[int, ...]] = []
    for _ in range(budget.random_length):
        best_vector = None
        best_state = None
        best_unknowns = None
        samples = budget.sync_samples if any(v == X for v in state) else 1
        for _ in range(samples):
            vector = tuple(
                1 if rng.random() < weights[i] else 0 for i in range(num_inputs)
            )
            next_state = step(state, vector)
            unknowns = sum(1 for v in next_state if v == X)
            if best_unknowns is None or unknowns < best_unknowns:
                best_vector, best_state, best_unknowns = vector, next_state, unknowns
        sequence.append(best_vector)
        state = best_state
    return sequence


def _synchronizing_walk_vector(
    stepper: VectorFastStepper,
    rng: random.Random,
    budget: AtpgBudget,
    num_inputs: int,
) -> List[Tuple[int, ...]]:
    """The walk on the compiled bit-parallel kernel.

    Each cycle's candidate vectors occupy one bit position apiece, so the
    whole sync-sample evaluation is a single ``step_clean`` call instead of
    ``sync_samples`` scalar steps.  RNG consumption and the first-best tie
    break match the scalar path exactly.
    """
    weights = [rng.choice((0.05, 0.2, 0.5, 0.8, 0.95)) for _ in range(num_inputs)]
    num_registers = stepper.compiled.num_registers
    state: Tuple[int, ...] = (X,) * num_registers
    step = stepper.step_clean
    sequence: List[Tuple[int, ...]] = []
    for _ in range(budget.random_length):
        samples = budget.sync_samples if any(v == X for v in state) else 1
        candidates = [
            tuple(1 if rng.random() < weights[i] else 0 for i in range(num_inputs))
            for _ in range(samples)
        ]
        mask = (1 << samples) - 1
        _, next_rails = step(
            stepper.broadcast_state(state, samples),
            stepper.pack_vectors(candidates),
            mask,
        )
        best = 0
        if samples > 1:
            known_words = [ones | zeros for ones, zeros in next_rails]
            best_unknowns = None
            for position in range(samples):
                bit = 1 << position
                unknowns = sum(1 for word in known_words if not word & bit)
                if best_unknowns is None or unknowns < best_unknowns:
                    best, best_unknowns = position, unknowns
        sequence.append(candidates[best])
        state = tuple(rail_pair_trit(pair, best) for pair in next_rails)
    return sequence


def _random_phase(
    circuit: Circuit,
    remaining: List[StuckAtFault],
    detected: Set[StuckAtFault],
    sequences: List[List[Tuple[int, ...]]],
    budget: AtpgBudget,
    meter: EffortMeter,
    rng: random.Random,
    backend: str = "auto",
) -> Tuple[List[StuckAtFault], int]:
    """Batched weighted-random phase; returns (remaining, random_detected).

    ``random_batch`` synchronizing walks are generated per round and
    fault-simulated in **one** bit-parallel call, instead of one kernel
    invocation per sequence; detections are attributed to the earliest
    detecting walk (the simulator drops within the batch), so results match
    the one-call-per-sequence loop.  The remaining list is rebuilt once per
    round, and only when the round detected something.
    """
    random_detected = 0
    stale = 0
    produced = 0
    num_inputs = len(circuit.input_names)
    walker = vector_fast_stepper(circuit)
    while (
        produced < budget.random_sequences
        and remaining
        and stale < budget.random_stale_limit
        and not meter.out_of_time()
    ):
        count = min(budget.random_batch, budget.random_sequences - produced)
        batch = [
            _synchronizing_walk(walker, rng, budget, num_inputs)
            for _ in range(count)
        ]
        produced += count
        result = parallel_fault_simulate(circuit, batch, remaining, backend=backend)
        by_walk: Dict[int, Set[StuckAtFault]] = {}
        for fault, detection in result.detections.items():
            by_walk.setdefault(detection.sequence_index, set()).add(fault)
        newly_this_round: Set[StuckAtFault] = set()
        for index, walk in enumerate(batch):
            newly = by_walk.get(index)
            if newly:
                sequences.append(walk)
                detected |= newly
                newly_this_round |= newly
                random_detected += len(newly)
                stale = 0
            else:
                stale += 1
                if stale >= budget.random_stale_limit:
                    # Stale cut mid-batch: walks past the cut are discarded
                    # along with their detections, exactly as if they had
                    # never been generated.
                    break
        if newly_this_round:
            remaining = [f for f in remaining if f not in newly_this_round]
    return remaining, random_detected


def _effort_row(fault: StuckAtFault, outcome: FaultOutcome) -> FaultEffort:
    """Rebuild the per-fault effort row a pool worker metered remotely."""
    if not outcome.attempted:
        return FaultEffort(EffortMeter.fault_key(fault), "budget")
    if outcome.detected:
        status = "det"
    elif outcome.aborted:
        status = "abort"
    else:
        status = "exhausted"
    return FaultEffort(
        fault_key=EffortMeter.fault_key(fault),
        status=status,
        seconds=outcome.seconds,
        backtracks=outcome.backtracks,
        simulations=outcome.simulations,
        frames_simulated=outcome.frames_simulated,
        lanes_evaluated=outcome.lanes_evaluated,
        objective_choices=outcome.objective_choices,
    )


def run_atpg(
    circuit: Circuit,
    faults: Optional[Sequence[StuckAtFault]] = None,
    budget: Optional[AtpgBudget] = None,
    *,
    workers: Optional[int] = None,
    engine: Optional[str] = None,
    kernel: str = "dual",
    backend: str = "auto",
    guidance="off",
    checkpoint=None,
    resume: bool = False,
) -> AtpgResult:
    """Generate a test set for the circuit's (collapsed) fault list.

    ``engine`` selects how the deterministic phase runs: ``"serial"``
    (default) targets faults one at a time in-process; ``"process"``
    partitions them across ``workers`` PODEM worker processes;
    ``"auto"`` defers the choice to :func:`choose_engine` once the
    post-random fault partition is known (serial on single-CPU hosts or
    small partitions, process otherwise).  When ``engine`` is omitted it
    is inferred from ``workers`` (a count above 1 selects the process
    pool).  Both engines yield the same partition and test set for a
    given seed whenever the wall-clock budget is not the binding limit.

    ``kernel`` selects PODEM's resimulation kernel (``"dual"`` or
    ``"scalar"``, see :class:`~repro.atpg.podem.PodemEngine`); the two
    produce bit-identical results at different speeds.

    ``backend`` selects the word implementation for the bit-parallel
    kernels (``"bigint"``, ``"numpy"``, or ``"auto"``, see
    :mod:`repro.simulation.backends`).  All backends produce bit-identical
    detections and test sets; only the speed differs.

    ``guidance`` steers the deterministic phase (see
    :mod:`repro.atpg.guidance`): ``"off"`` (default) keeps every choice
    bit-identical to the unguided engine; ``"scoap"`` orders faults
    hardest-first, ranks PODEM objectives, and prunes provably-infeasible
    time frames from SCOAP testability measures; ``"learned"``
    additionally scores faults and objectives
    with a trained meta-predictor (falling back to ``"scoap"`` when no
    predictor is at hand); ``"auto"`` picks ``learned`` when a predictor
    is available.  A prebuilt
    :class:`~repro.atpg.guidance.GuidancePolicy` is accepted directly.
    Guided runs are deterministic (every ranking ties on the fault key)
    but ordered differently from unguided runs, so their test sets are
    interchangeable -- same coverage contract, verified by the
    preservation suites -- rather than byte-identical.  A ``checkpoint``
    written under one guidance mode should only be resumed under the
    same mode (the flow pipeline keys checkpoints accordingly).

    ``checkpoint`` (an :class:`~repro.store.checkpoint.AtpgCheckpoint`)
    makes the run journal its per-fault outcomes as it goes; with
    ``resume=True`` a valid checkpoint for the same (circuit, faults,
    budget) triple restores the random phase and every deterministic
    detection/exhaustion already proven, so only budget-aborted and
    never-reached faults are targeted again.  Restored outcomes are folded
    back through the same queue-order collateral replay as live ones, so a
    resumed run's test set is bit-identical to an uninterrupted run's
    whenever the wall clock is not the binding limit.
    """
    if budget is None:
        budget = AtpgBudget()
    if kernel not in PODEM_KERNELS:
        raise ValueError(
            f"unknown kernel {kernel!r} (expected one of {PODEM_KERNELS})"
        )
    # Fail fast on an unknown/unavailable backend, before any phase runs.
    resolve_backend(backend)
    if engine is None:
        engine = "process" if workers is not None and workers > 1 else "serial"
        engine_reason = f"inferred from workers={workers}"
    else:
        engine_reason = "requested"
    if engine not in ATPG_ENGINES:
        raise ValueError(f"unknown engine {engine!r} (expected one of {ATPG_ENGINES})")
    if isinstance(guidance, GuidancePolicy):
        policy: Optional[GuidancePolicy] = guidance
    else:
        policy = make_policy(circuit, guidance)  # validates the mode string
    guidance_mode = policy.mode if policy is not None else "off"
    if engine == "process":
        workers = workers if workers is not None else default_workers()
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
    elif engine == "serial":
        workers = 1
    if faults is None:
        faults = collapse_faults(circuit).representatives
    meter = EffortMeter(budget)
    rng = random.Random(budget.seed)

    restored = None
    if checkpoint is not None and resume:
        restored = checkpoint.load(circuit, faults, budget)

    untestable = structurally_untestable(circuit) & set(faults)
    remaining: List[StuckAtFault] = [f for f in faults if f not in untestable]
    detected: Set[StuckAtFault] = set()
    sequences: List[List[Tuple[int, ...]]] = []

    # ---- Phase 1: random sequences with fault-simulation feedback --------
    # Vectors are chosen with a light synchronization bias: at each cycle a
    # few random candidates are simulated pattern-parallel on the good
    # machine and the one resolving the most unknown flip-flops wins.  Pure
    # random vectors almost never synchronize a machine without a reset
    # line; this greedy walk is the standard practical fix.
    random_start = time.perf_counter()
    if restored is not None:
        # The phase is seeded, so replaying it would reproduce these very
        # sequences; restoring them verbatim just skips the simulation.
        checkpoint.resume_marker()
        sequences = [list(seq) for seq in restored.sequences]
        detected = set(restored.random_detected_faults)
        random_detected = restored.random_detected
        remaining = [f for f in remaining if f not in detected]
    else:
        if checkpoint is not None:
            checkpoint.start(circuit, faults, budget)
        remaining, random_detected = _random_phase(
            circuit, remaining, detected, sequences, budget, meter, rng, backend
        )
        if checkpoint is not None:
            checkpoint.record_random_phase(sequences, detected, random_detected)
    random_seconds = time.perf_counter() - random_start

    # ---- Phase 2: deterministic PODEM ------------------------------------
    # The time-frame window must cover the circuit's sequential depth:
    # justification through R flip-flops can need on the order of R frames.
    # This is the structural mechanism behind the paper's Table II blowup:
    # retimed circuits carry several times more flip-flops, so the
    # deterministic engine unrolls deeper and every targeted fault costs
    # more.
    deterministic_start = time.perf_counter()
    # ``frames_cap`` bounds the escalation so a register-rich circuit cannot
    # force arbitrarily deep (and arbitrarily expensive) unrolls.
    max_frames = min(
        budget.frames_cap, max(budget.max_frames, 2 * circuit.num_registers())
    )
    deterministic_detected = 0
    abort_reason: Dict[StuckAtFault, str] = {}
    fault_rows: List[FaultEffort] = []
    queue = list(remaining)
    queue_costs: Optional[Dict[StuckAtFault, float]] = None
    if policy is not None and queue:
        # Guided ordering: hardest faults first.  Hard faults need deep
        # time-frame windows, and the long sequences they produce are
        # replayed against the whole queue -- sweeping much of the cheap
        # tail as collateral detections before it is ever targeted.
        # Tackling them while the per-fault budget is untouched also
        # avoids re-deriving their windows late.  (Measured on the Table
        # II set: never worse than cheapest-first, and up to 13% less
        # deterministic effort on the s510/s820 retimings.)  The explicit
        # fault-key tie-break keeps the order reproducible across
        # processes and Python versions.
        queue_costs = policy.score_faults(circuit, queue)
        queue.sort(key=lambda f: (-queue_costs[f], fault_sort_key(f)))

    # ``auto`` decides here, with the post-random partition in hand: a pool
    # is only worth spinning up for enough faults on enough cores.
    if engine == "auto":
        engine, engine_reason = choose_engine(len(queue), workers)
        workers = (
            (workers if workers is not None else default_workers())
            if engine == "process"
            else 1
        )

    def absorb(fault: StuckAtFault, outcome: FaultOutcome) -> None:
        """Fold one PODEM outcome into the global partition (queue order).

        An accepted sequence is bit-parallel fault-simulated against every
        fault still remaining, so collateral detections are dropped from
        the queue -- and, in process mode, duplicate effort spent on them
        by other workers is discarded when their turn comes.
        """
        nonlocal deterministic_detected
        if not outcome.attempted:
            abort_reason[fault] = "budget"
            return
        if outcome.detected and outcome.sequence is not None:
            replay = parallel_fault_simulate(
                circuit,
                [outcome.sequence],
                [f for f in queue if f not in detected],
                backend=backend,
            )
            newly = set(replay.detections)
            if fault not in newly:
                # The generated sequence must detect its target; treat a
                # mismatch as an abort rather than trusting the search.
                abort_reason[fault] = "search"
                return
            sequences.append(outcome.sequence)
            detected.update(newly)
            deterministic_detected += len(newly)
        elif outcome.aborted:
            abort_reason[fault] = "budget"
        else:
            abort_reason[fault] = "search"  # exhausted within frame bound

    # Restored outcomes (detections and search exhaustions proven by the
    # interrupted run -- both deterministic) short-circuit their faults;
    # clock-dependent outcomes (budget aborts, never-reached faults) were
    # deliberately not restored and rejoin the live queue below.
    def restored_outcome(fault: StuckAtFault):
        if restored is None:
            return None
        return restored.restorable(fault)

    if engine == "process" and queue:
        # Only non-restored faults go to the pool; restored ones are folded
        # in at their original queue positions so the collateral replay
        # sees the exact interleaving an uninterrupted run would have.
        pending = [f for f in queue if restored_outcome(f) is None]
        pool = iter_podem_partitioned(
            circuit,
            pending,
            budget,
            max_frames,
            workers,
            meter.remaining(),
            kernel,
            backend,
            guidance=policy,
            costs=(
                [queue_costs[f] for f in pending]
                if queue_costs is not None
                else None
            ),
        )
        for fault in queue:
            record = restored_outcome(fault)
            if record is None:
                _pool_fault, outcome = next(pool)
            if fault in detected:
                # Collaterally detected by an earlier accepted sequence;
                # the worker's redundant effort is dropped, matching the
                # serial loop which never targets such faults.
                continue
            if record is not None:
                meter.backtracks += record.backtracks
                absorb(
                    fault,
                    FaultOutcome(
                        record.status == "det", record.sequence, record.backtracks, False
                    ),
                )
                continue
            meter.backtracks += outcome.backtracks
            meter.simulations += outcome.simulations
            meter.frames_simulated += outcome.frames_simulated
            meter.lanes_evaluated += outcome.lanes_evaluated
            meter.objective_choices += outcome.objective_choices
            fault_rows.append(_effort_row(fault, outcome))
            if checkpoint is not None:
                checkpoint.record_fault(fault, outcome)
            absorb(fault, outcome)
    else:
        podem = PodemEngine(
            circuit, kernel=kernel, backend=backend, guidance=policy
        )
        for fault in queue:
            if fault in detected:
                continue
            record = restored_outcome(fault)
            if record is not None:
                meter.backtracks += record.backtracks
                absorb(
                    fault,
                    FaultOutcome(
                        record.status == "det", record.sequence, record.backtracks, False
                    ),
                )
                continue
            if meter.out_of_time():
                # The shared clock expired before this fault was targeted;
                # it still flushes a (zero-effort) row so the dataset
                # accounts for every queued fault.
                meter.skip_fault(fault)
                fault_rows.append(meter.fault_rows[-1])
                abort_reason[fault] = "budget"
                continue
            result = podem.generate(
                fault,
                meter,
                max_frames=max_frames,
                deadline=time.perf_counter() + budget.seconds_per_fault,
            )
            fault_rows.append(meter.fault_rows[-1])
            outcome = FaultOutcome(
                result.detected, result.sequence, result.backtracks, result.aborted
            )
            if checkpoint is not None:
                checkpoint.record_fault(fault, outcome)
            absorb(fault, outcome)
    deterministic_seconds = time.perf_counter() - deterministic_start
    if checkpoint is not None:
        checkpoint.close()

    # A fault aborted by its own search may still have been detected
    # collaterally by a later fault's sequence; reconcile the partition.
    for fault in detected:
        abort_reason.pop(fault, None)
    aborted = set(abort_reason)

    test_set = TestSet.from_lists(
        circuit.name, len(circuit.input_names), sequences
    )
    return AtpgResult(
        circuit_name=circuit.name,
        test_set=test_set,
        num_faults=len(faults),
        detected=detected,
        untestable=untestable,
        aborted=aborted,
        cpu_seconds=meter.elapsed(),
        backtracks=meter.backtracks,
        random_detected=random_detected,
        deterministic_detected=deterministic_detected,
        search_exhausted=sum(1 for r in abort_reason.values() if r == "search"),
        budget_aborted=sum(1 for r in abort_reason.values() if r == "budget"),
        random_seconds=random_seconds,
        deterministic_seconds=deterministic_seconds,
        engine=engine,
        workers=workers,
        kernel=kernel,
        engine_reason=engine_reason,
        simulations=meter.simulations,
        frames_simulated=meter.frames_simulated,
        lanes_evaluated=meter.lanes_evaluated,
        guidance=guidance_mode,
        objective_choices=meter.objective_choices,
        fault_rows=fault_rows,
    )


__all__ = [
    "run_atpg",
    "AtpgResult",
    "structurally_untestable",
    "choose_engine",
    "ATPG_ENGINES",
    "MIN_POOL_FAULTS",
]
