"""The full ATPG engine: random phase + deterministic PODEM phase.

Mirrors the two-phase organization of HITEC-era tools:

1. **Random phase** -- weighted-random test sequences are generated and
   fault-simulated (PROOFS-style, with dropping); sequences that detect
   new faults join the test set, and the phase ends after a run of
   unproductive sequences or when its budget share is spent.
2. **Deterministic phase** -- every remaining fault is targeted by the
   sequential PODEM engine under a per-fault backtrack limit and a global
   wall-clock budget.  Sequences found are fault-simulated against the
   remaining faults to drop collateral detections.

The result reports fault coverage (%FC), fault efficiency (%FE = detected
plus proven-untestable faults) and spent effort (seconds, backtracks) --
the quantities of the paper's Table II.  Untestability proofs here are
structural only (faults with no path to any primary output); HITEC's
sequential redundancy identification is out of scope, so FE is a slightly
conservative lower bound.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.atpg.budget import AtpgBudget, EffortMeter
from repro.atpg.podem import PodemEngine
from repro.circuit.netlist import Circuit, LineRef
from repro.faults.collapse import collapse_faults
from repro.faults.model import StuckAtFault
from repro.faultsim.parallel import parallel_fault_simulate
from repro.simulation.cache import fast_stepper
from repro.simulation.codegen import FastStepper
from repro.testset.model import TestSet


@dataclass
class AtpgResult:
    """Outcome of one ATPG run (one Table II cell group)."""

    circuit_name: str
    test_set: TestSet
    num_faults: int
    detected: Set[StuckAtFault]
    untestable: Set[StuckAtFault]
    aborted: Set[StuckAtFault]
    cpu_seconds: float
    backtracks: int
    random_detected: int
    deterministic_detected: int

    @property
    def fault_coverage(self) -> float:
        """%FC: detected / total."""
        if not self.num_faults:
            return 100.0
        return 100.0 * len(self.detected) / self.num_faults

    @property
    def fault_efficiency(self) -> float:
        """%FE: (detected + proven untestable) / total."""
        if not self.num_faults:
            return 100.0
        return 100.0 * (len(self.detected) + len(self.untestable)) / self.num_faults

    def summary(self) -> str:
        return (
            f"{self.circuit_name}: FC {self.fault_coverage:.1f}% "
            f"FE {self.fault_efficiency:.1f}% "
            f"({len(self.detected)}/{self.num_faults} detected, "
            f"{len(self.aborted)} aborted) in {self.cpu_seconds:.2f}s, "
            f"{self.backtracks} backtracks"
        )


def structurally_untestable(circuit: Circuit) -> Set[StuckAtFault]:
    """Faults on lines with no structural path to any primary output.

    Observability is propagated backward over *all* edges (registers
    included) to a fixpoint, so feedback loops are handled.
    """
    observable: Set[str] = {
        name
        for name, node in circuit.nodes.items()
        if node.kind.value == "output"
    }
    frontier = list(observable)
    while frontier:
        name = frontier.pop()
        for edge in circuit.in_edges(name):
            if edge.source not in observable:
                observable.add(edge.source)
                frontier.append(edge.source)
    untestable: Set[StuckAtFault] = set()
    for edge in circuit.edges:
        if edge.sink not in observable:
            for segment in range(1, edge.num_lines + 1):
                untestable.add(StuckAtFault(LineRef(edge.index, segment), 0))
                untestable.add(StuckAtFault(LineRef(edge.index, segment), 1))
    return untestable


def _synchronizing_walk(
    stepper,
    rng: random.Random,
    budget: AtpgBudget,
    num_inputs: int,
) -> List[Tuple[int, ...]]:
    """One weighted-random sequence biased toward synchronizing, then touring.

    While flip-flops are unknown, a few candidate vectors are sampled each
    cycle and the one resolving the most unknowns wins (greedy structural
    synchronization).  Once synchronized, vectors are drawn with
    *per-sequence per-input weights* -- the classic weighted-random-pattern
    technique.  Without it, an input that resets or re-synchronizes the
    machine fires every other cycle under uniform vectors and the walk
    never tours the deep states.
    """
    from repro.logic.three_valued import X

    weights = [rng.choice((0.05, 0.2, 0.5, 0.8, 0.95)) for _ in range(num_inputs)]
    state = stepper.unknown_state()
    # Accept both the code-generated stepper (returns a plain tuple) and the
    # reference SequentialSimulator (returns a StepResult).
    raw_step = stepper.step
    if isinstance(stepper, FastStepper):
        step = lambda s, v: raw_step(s, v)[1]  # noqa: E731
    else:
        step = lambda s, v: raw_step(s, v).next_state  # noqa: E731
    sequence: List[Tuple[int, ...]] = []
    for _ in range(budget.random_length):
        best_vector = None
        best_state = None
        best_unknowns = None
        samples = budget.sync_samples if any(v == X for v in state) else 1
        for _ in range(samples):
            vector = tuple(
                1 if rng.random() < weights[i] else 0 for i in range(num_inputs)
            )
            next_state = step(state, vector)
            unknowns = sum(1 for v in next_state if v == X)
            if best_unknowns is None or unknowns < best_unknowns:
                best_vector, best_state, best_unknowns = vector, next_state, unknowns
        sequence.append(best_vector)
        state = best_state
    return sequence


def run_atpg(
    circuit: Circuit,
    faults: Optional[Sequence[StuckAtFault]] = None,
    budget: Optional[AtpgBudget] = None,
) -> AtpgResult:
    """Generate a test set for the circuit's (collapsed) fault list."""
    if budget is None:
        budget = AtpgBudget()
    if faults is None:
        faults = collapse_faults(circuit).representatives
    meter = EffortMeter(budget)
    rng = random.Random(budget.seed)

    untestable = structurally_untestable(circuit) & set(faults)
    remaining: List[StuckAtFault] = [f for f in faults if f not in untestable]
    detected: Set[StuckAtFault] = set()
    sequences: List[List[Tuple[int, ...]]] = []

    # ---- Phase 1: random sequences with fault-simulation feedback --------
    # Vectors are chosen with a light synchronization bias: at each cycle a
    # few random candidates are simulated on the good machine and the one
    # resolving the most unknown flip-flops wins.  Pure random vectors
    # almost never synchronize a machine without a reset line; this greedy
    # walk is the standard practical fix.
    random_detected = 0
    stale = 0
    num_inputs = len(circuit.input_names)
    walker = fast_stepper(circuit)
    for _ in range(budget.random_sequences):
        if meter.out_of_time() or not remaining or stale >= budget.random_stale_limit:
            break
        sequence = _synchronizing_walk(walker, rng, budget, num_inputs)
        result = parallel_fault_simulate(circuit, [sequence], remaining)
        if result.detections:
            sequences.append(sequence)
            newly = set(result.detections)
            detected |= newly
            random_detected += len(newly)
            remaining = [f for f in remaining if f not in newly]
            stale = 0
        else:
            stale += 1

    # ---- Phase 2: deterministic PODEM ------------------------------------
    # The time-frame window must cover the circuit's sequential depth:
    # justification through R flip-flops can need on the order of R frames.
    # This is the structural mechanism behind the paper's Table II blowup:
    # retimed circuits carry several times more flip-flops, so the
    # deterministic engine unrolls deeper and every targeted fault costs
    # more.
    max_frames = min(64, max(budget.max_frames, 2 * circuit.num_registers()))
    deterministic_detected = 0
    aborted: Set[StuckAtFault] = set()
    engine = PodemEngine(circuit)
    queue = list(remaining)
    for fault in queue:
        if fault in detected:
            continue
        if meter.out_of_time():
            aborted.add(fault)
            continue
        outcome = engine.generate(
            fault,
            meter,
            max_frames=max_frames,
            deadline=time.perf_counter() + budget.seconds_per_fault,
        )
        if outcome.detected and outcome.sequence is not None:
            sequences.append(outcome.sequence)
            result = parallel_fault_simulate(
                circuit, [outcome.sequence], [f for f in queue if f not in detected]
            )
            newly = set(result.detections)
            if fault not in newly:
                # The generated sequence must detect its target; treat a
                # mismatch as an abort rather than trusting the search.
                sequences.pop()
                aborted.add(fault)
                continue
            detected |= newly
            deterministic_detected += len(newly)
        elif outcome.aborted:
            aborted.add(fault)
        else:
            aborted.add(fault)  # search exhausted within frame bound

    # A fault aborted by its own search may still have been detected
    # collaterally by a later fault's sequence; reconcile the partition.
    aborted -= detected

    test_set = TestSet.from_lists(circuit.name, num_inputs, sequences)
    return AtpgResult(
        circuit_name=circuit.name,
        test_set=test_set,
        num_faults=len(faults),
        detected=detected,
        untestable=untestable,
        aborted=aborted,
        cpu_seconds=meter.elapsed(),
        backtracks=meter.backtracks,
        random_detected=random_detected,
        deterministic_detected=deterministic_detected,
    )


__all__ = ["run_atpg", "AtpgResult", "structurally_untestable"]
