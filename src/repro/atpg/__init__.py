"""Structural sequential ATPG (the HITEC stand-in).

Random-phase test generation with fault-simulation feedback, followed by
deterministic PODEM over time-frame expansion with backtrack/time budgets.
"""

from repro.atpg.budget import AtpgBudget, EffortMeter
from repro.atpg.engine import AtpgResult, run_atpg, structurally_untestable
from repro.atpg.podem import PodemEngine, PodemResult

__all__ = [
    "AtpgBudget",
    "EffortMeter",
    "run_atpg",
    "AtpgResult",
    "structurally_untestable",
    "PodemEngine",
    "PodemResult",
]
