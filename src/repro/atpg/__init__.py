"""Structural sequential ATPG (the HITEC stand-in).

Random-phase test generation with fault-simulation feedback, followed by
deterministic PODEM over time-frame expansion with backtrack/time budgets.
The deterministic phase runs in-process (``engine="serial"``) or across a
pool of PODEM worker processes (``engine="process"``), with identical
results for a given seed whenever the wall-clock budget is not binding.
"""

from repro.atpg.budget import AtpgBudget, EffortMeter
from repro.atpg.engine import (
    ATPG_ENGINES,
    AtpgResult,
    run_atpg,
    structurally_untestable,
)
from repro.atpg.parallel import FaultOutcome, default_workers, podem_partitioned
from repro.atpg.podem import PodemEngine, PodemResult

__all__ = [
    "AtpgBudget",
    "EffortMeter",
    "run_atpg",
    "AtpgResult",
    "ATPG_ENGINES",
    "structurally_untestable",
    "PodemEngine",
    "PodemResult",
    "FaultOutcome",
    "podem_partitioned",
    "default_workers",
]
