"""Structural sequential ATPG (the HITEC stand-in).

Random-phase test generation with fault-simulation feedback, followed by
deterministic PODEM over time-frame expansion with backtrack/time budgets.
The deterministic phase runs in-process (``engine="serial"``) or across a
pool of PODEM worker processes (``engine="process"``), with identical
results for a given seed whenever the wall-clock budget is not binding.

The ``guidance`` knob (``"off"``/``"scoap"``/``"learned"``/``"auto"``,
see :mod:`repro.atpg.guidance`) layers SCOAP testability ranking and an
optional trained meta-predictor over the deterministic phase: fault
ordering, pool partitioning and backtrace objective selection become
cost-aware while ``"off"`` stays bit-identical to the unguided engine.
"""

from repro.atpg.budget import AtpgBudget, EffortMeter, FaultEffort
from repro.atpg.engine import (
    ATPG_ENGINES,
    AtpgResult,
    run_atpg,
    structurally_untestable,
)
from repro.atpg.guidance import (
    GUIDANCE_MODES,
    GuidancePolicy,
    MetaPredictor,
    ScoapMeasures,
    compute_scoap,
    make_policy,
    policy_from_effort_rows,
    scoap_measures,
    train_predictor,
)
from repro.atpg.parallel import FaultOutcome, default_workers, podem_partitioned
from repro.atpg.podem import PodemEngine, PodemResult

__all__ = [
    "AtpgBudget",
    "EffortMeter",
    "FaultEffort",
    "run_atpg",
    "AtpgResult",
    "ATPG_ENGINES",
    "GUIDANCE_MODES",
    "GuidancePolicy",
    "MetaPredictor",
    "ScoapMeasures",
    "compute_scoap",
    "make_policy",
    "policy_from_effort_rows",
    "scoap_measures",
    "train_predictor",
    "structurally_untestable",
    "PodemEngine",
    "PodemResult",
    "FaultOutcome",
    "podem_partitioned",
    "default_workers",
]
