"""repro -- reproduction of "On Test Set Preservation of Retimed Circuits".

A. El-Maleh, T. Marchok, J. Rajski, W. Maly, 32nd Design Automation
Conference (DAC), 1995.

The library implements, from scratch, every system the paper's results rest
on: a gate-level sequential circuit model with the paper's line/fault-site
semantics, three-valued and bit-parallel logic simulation, stuck-at fault
machinery with retiming-aware fault correspondence, a PROOFS-style fault
simulator, a Leiserson--Saxe retiming engine (min-period and min-register),
an FSM synthesis substrate standing in for SIS/jedi, explicit state-space
analysis of the paper's equivalence/containment relations, a HITEC-style
sequential ATPG, and the paper's headline contribution: test-set
preservation under retiming via arbitrary-vector prefixing (Theorems 1-4)
and the retime-for-testability ATPG flow of Fig. 6.

Quick start::

    from repro import CircuitBuilder, GateType
    from repro.retiming import min_period_retiming
    from repro.core import derive_retimed_test_set

See ``examples/quickstart.py`` for a complete tour.
"""

from repro.circuit import Circuit, CircuitBuilder, GateType, NodeKind

__version__ = "1.0.0"

__all__ = ["Circuit", "CircuitBuilder", "GateType", "NodeKind", "__version__"]
