"""Reconstructions of the circuits in the paper's figures.

Each module documents how faithfully the reconstruction tracks the paper
(the drawings are not fully recoverable from text, but every *stated*
property of each figure is reproduced and asserted by the test suite and
the figure benchmarks).
"""

from repro.papercircuits.fig1 import (
    fig1_gate_k1,
    fig1_gate_pair,
    fig1_stem_k1,
    fig1_stem_pair,
)
from repro.papercircuits.fig2 import fig2_c1, fig2_pair
from repro.papercircuits.fig3 import fig3_l1, fig3_pair, l1_state_stem
from repro.papercircuits.fig5 import (
    EXAMPLE2_SEQUENCE,
    EXAMPLE4_TEST,
    fig5_n1,
    fig5_pair,
    g1_g2_edge,
    n1_g1_g2_fault,
    n2_g1_q12_fault,
    n2_q12_g2_fault,
)

__all__ = [
    "fig1_gate_k1",
    "fig1_gate_pair",
    "fig1_stem_k1",
    "fig1_stem_pair",
    "fig2_c1",
    "fig2_pair",
    "fig3_l1",
    "fig3_pair",
    "l1_state_stem",
    "fig5_n1",
    "fig5_pair",
    "g1_g2_edge",
    "n1_g1_g2_fault",
    "n2_g1_q12_fault",
    "n2_q12_g2_fault",
    "EXAMPLE2_SEQUENCE",
    "EXAMPLE4_TEST",
]
