"""Fig. 5: forward retiming across a single-output gate (N1 -> N2).

Reconstructed from the line names and simulation traces in the paper's
Examples 2 and 4:

* N1 has inputs I1, I2, I3 and three flip-flops: Q1 and Q2 on the input
  edges of the AND gate G1 (the paper's lines I1-Q1 / Q1-G1 and
  I2-Q2 / Q2-G1 are the two segments of those weight-1 edges), and Q3 on
  G2's feedback;
* N2 is a single forward retiming move across G1: Q1 and Q2 merge into a
  single register Q12 on G1's output edge (lines G1-Q12 / Q12-G2);
* Example 2: the structural sequence <001, 000> synchronizes N1 under the
  stuck-at-1 fault on line G1-G2 to state {001} (= Q1 Q2 Q3), but does
  *not* synchronize N2 under the corresponding stuck-at-1 fault on line
  G1-Q12 -- it leaves N2 in {1x}.  Prefixing one arbitrary vector restores
  synchronization (Lemma 4 / Theorem 3);
* Example 4 / Observation 4: the structural test sequence
  <001,000,100,010,010> detects the G1-G2 s-a-1 fault in N1 but not the
  corresponding G1-Q12 s-a-1 fault in N2; the prefixed sequence does.

Structure::

    G1 = AND(DFF(I1), DFF(I2))
    G3 = OR(I3, Q3)
    G2 = AND(G1, G3)
    Q3 = DFF(G2)
    Z  = G2
"""

from __future__ import annotations

from typing import Tuple

from repro.circuit.builder import CircuitBuilder
from repro.circuit.netlist import Circuit, LineRef
from repro.faults.model import StuckAtFault
from repro.logic.three_valued import ONE
from repro.retiming.core import Retiming

EXAMPLE2_SEQUENCE = [(0, 0, 1), (0, 0, 0)]
EXAMPLE4_TEST = [(0, 0, 1), (0, 0, 0), (1, 0, 0), (0, 1, 0), (0, 1, 0)]


def fig5_n1() -> Circuit:
    """The reconstructed N1 of Fig. 5 (three flip-flops, AND gate G1)."""
    builder = CircuitBuilder("fig5_n1")
    builder.input("I1")
    builder.input("I2")
    builder.input("I3")
    builder.dff("Q1", "I1")
    builder.dff("Q2", "I2")
    builder.and_("G1", "Q1", "Q2")
    builder.or_("G3", "I3", "Q3")
    builder.and_("G2", "G1", "G3")
    builder.dff("Q3", "G2")
    builder.output("Z", "G2")
    return builder.build()


def fig5_pair() -> Tuple[Circuit, Circuit, Retiming]:
    """(N1, N2, retiming N1 -> N2): one forward move across gate G1."""
    n1 = fig5_n1()
    retiming = Retiming(n1, {"G1": -1})
    return n1, retiming.apply("fig5_n2"), retiming


def g1_g2_edge(circuit: Circuit) -> int:
    """Index of the G1 -> G2 edge (weight 0 in N1, weight 1 in N2)."""
    for edge in circuit.edges:
        if edge.source == "G1" and edge.sink == "G2":
            return edge.index
    raise ValueError("fig5 layout changed: no G1 -> G2 edge")


def n1_g1_g2_fault(n1: Circuit) -> StuckAtFault:
    """The paper's stuck-at-1 fault on line G1-G2 in N1."""
    return StuckAtFault(LineRef(g1_g2_edge(n1), 1), ONE)


def n2_g1_q12_fault(n2: Circuit) -> StuckAtFault:
    """The corresponding stuck-at-1 fault on line G1-Q12 in N2 (segment 1)."""
    return StuckAtFault(LineRef(g1_g2_edge(n2), 1), ONE)


def n2_q12_g2_fault(n2: Circuit) -> StuckAtFault:
    """The stuck-at-1 fault on line Q12-G2 in N2 (segment 2)."""
    return StuckAtFault(LineRef(g1_g2_edge(n2), 2), ONE)


__all__ = [
    "fig5_n1",
    "fig5_pair",
    "g1_g2_edge",
    "n1_g1_g2_fault",
    "n2_g1_q12_fault",
    "n2_q12_g2_fault",
    "EXAMPLE2_SEQUENCE",
    "EXAMPLE4_TEST",
]
