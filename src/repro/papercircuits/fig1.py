"""Fig. 1: the atomic retiming moves.

Two minimal circuit pairs:

* :func:`fig1_gate_pair` -- K1/K2 of Fig. 1(a): registers on both inputs of
  a single-output gate G (K1) vs one register on its output (K2); K2 is the
  forward move of K1 across G, K1 the backward move of K2.
* :func:`fig1_stem_pair` -- Fig. 1(b): one register before a fanout stem
  (K1) vs one register on each branch (K2).
"""

from __future__ import annotations

from typing import Tuple

from repro.circuit.builder import CircuitBuilder
from repro.circuit.netlist import Circuit
from repro.retiming.core import Retiming


def fig1_gate_k1() -> Circuit:
    """Registers Q0, Q1 on the inputs of gate G."""
    builder = CircuitBuilder("fig1a_k1")
    builder.input("I1")
    builder.input("I2")
    builder.dff("Q0", "I1")
    builder.dff("Q1", "I2")
    builder.and_("G", "Q0", "Q1")
    builder.output("O", "G")
    return builder.build()


def fig1_gate_pair() -> Tuple[Circuit, Circuit, Retiming]:
    """(K1, K2, retiming K1 -> K2) for the single-output-gate move."""
    k1 = fig1_gate_k1()
    retiming = Retiming(k1, {"G": -1})  # one forward move across G
    return k1, retiming.apply("fig1a_k2"), retiming


def fig1_stem_k1() -> Circuit:
    """One register feeding a fanout stem with two branches."""
    builder = CircuitBuilder("fig1b_k1")
    builder.input("I1")
    builder.dff("Q", "I1")
    builder.buf("g1", "Q")
    builder.not_("g2", "Q")
    builder.output("O1", "g1")
    builder.output("O2", "g2")
    return builder.build()


def fig1_stem_pair() -> Tuple[Circuit, Circuit, Retiming]:
    """(K1, K2, retiming K1 -> K2) for the fanout-stem move."""
    k1 = fig1_stem_k1()
    stem = k1.fanout_stems()[0]
    retiming = Retiming(k1, {stem.name: -1})  # one forward move across the stem
    return k1, retiming.apply("fig1b_k2"), retiming


__all__ = ["fig1_gate_k1", "fig1_gate_pair", "fig1_stem_k1", "fig1_stem_pair"]
