"""Fig. 3: forward retiming across a fanout stem (L1 -> L2).

Reconstruction matching every property stated in the paper:

* L1: two inputs, one flip-flop ``q`` whose output fans out to two
  branches (directly to g1 and through an inverter to g2);
* ``<11>`` is a **functional-based but not structural-based** synchronizing
  sequence for L1, synchronizing it to state {1}: ``Z = OR(AND(q, I1),
  AND(!q, I2))`` evaluates to 1 under I1=I2=1 regardless of ``q``, but
  three-valued simulation yields X (Observation 1 / Example 1);
* L2 = a single forward retiming move across the stem: the shared register
  splits onto the two branches, creating the inconsistent state (0, 1)
  that has no equivalent in L1 -- and ``<11>`` no longer synchronizes L2;
* every two-vector sequence ``<xy, 11>`` synchronizes L2 to state {11},
  equivalent to L1's {1} (Theorem 2 with prefix length 1);
* Example 3 (Observation 3): the stuck-at-0 fault on L1's output is
  functionally detected by ``<11>`` in L1 but its corresponding fault in
  L2 is not, because the inconsistent initial state (0, 1) already drives
  the fault-free output to 0.

Structure::

    q  = DFF(Z)                 # Z fans out to the PO and the flip-flop
    n  = NOT(q)
    g1 = AND(q, I1)
    g2 = AND(n, I2)
    Z  = OR(g1, g2)
"""

from __future__ import annotations

from typing import Tuple

from repro.circuit.builder import CircuitBuilder
from repro.circuit.netlist import Circuit
from repro.retiming.core import Retiming


def fig3_l1() -> Circuit:
    """The reconstructed L1 of Fig. 3 (one flip-flop, fanout stem state)."""
    builder = CircuitBuilder("fig3_l1")
    builder.input("I1")
    builder.input("I2")
    builder.and_("g1", "q", "I1")
    builder.not_("n", "q")
    builder.and_("g2", "n", "I2")
    builder.or_("d", "g1", "g2")
    builder.dff("q", "d")
    builder.output("Z", "d")
    return builder.build()


def l1_state_stem(circuit: Circuit) -> str:
    """The stem distributing the register output to g1 and the inverter."""
    for stem in circuit.fanout_stems():
        in_edge = circuit.in_edges(stem.name)[0]
        if in_edge.weight == 1:
            return stem.name
    raise ValueError("fig3 layout changed: no register-fed stem found")


def fig3_pair() -> Tuple[Circuit, Circuit, Retiming]:
    """(L1, L2, retiming L1 -> L2): one forward move across the state stem."""
    l1 = fig3_l1()
    retiming = Retiming(l1, {l1_state_stem(l1): -1})
    return l1, retiming.apply("fig3_l2"), retiming


__all__ = ["fig3_l1", "fig3_pair", "l1_state_stem"]
