"""Fig. 2: backward retiming across a single-output gate (C1 -> C2).

The paper's exact gate-level drawing is not fully recoverable from the
text, so this is a faithful *behavioural* reconstruction with every
property the paper states:

* C1 has two primary inputs, one flip-flop and clock period 4 under the
  paper's delay model (gate delay = number of inputs);
* C2 is obtained from C1 by a single backward retiming move across a
  single-output combinational gate; its period is 3 and it has 2 flip-flops;
* the STG of C1 has no equivalent states, while the STG of C2 has three
  equivalent states {01, 10, 11}, with {00} equivalent to C1's state {0}
  and the other three equivalent to C1's state {1} -- retiming *created*
  equivalent states, and ``C1 ==s C2`` (Lemma 1);
* the input vector <11> synchronizes C1 to state {1} and C2 into the
  equivalent class, illustrating Theorem 1.

Structure::

    g1 = XOR(I1, I2)         # delay 2
    g2 = OR(g1, I2)          # delay 2; long path g1 -> g2 has delay 4
    q  = DFF(g2)
    g3 = NOT(q)              # delay 1
    Z  = g3

C2 = backward move across g2 (r(g2) = +1): the register moves from g2's
output onto both of its input edges.
"""

from __future__ import annotations

from typing import Tuple

from repro.circuit.builder import CircuitBuilder
from repro.circuit.netlist import Circuit
from repro.retiming.core import Retiming


def fig2_c1() -> Circuit:
    """The reconstructed C1 of Fig. 2 (one flip-flop, period 4)."""
    builder = CircuitBuilder("fig2_c1")
    builder.input("I1")
    builder.input("I2")
    builder.xor("g1", "I1", "I2")
    builder.or_("g2", "g1", "I2")
    builder.dff("q", "g2")
    builder.not_("g3", "q")
    builder.output("Z", "g3")
    return builder.build()


def fig2_pair() -> Tuple[Circuit, Circuit, Retiming]:
    """(C1, C2, retiming C1 -> C2): one backward move across gate g2."""
    c1 = fig2_c1()
    retiming = Retiming(c1, {"g2": 1})
    return c1, retiming.apply("fig2_c2"), retiming


__all__ = ["fig2_c1", "fig2_pair"]
