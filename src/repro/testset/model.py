"""Test-set model.

A :class:`TestSet` is an ordered collection of *test sequences*.  Each
sequence is applied from the all-unknown state (the paper's
no-global-reset setting): a sequential ATPG emits, per targeted fault, a
vector sequence that synchronizes, excites and propagates; fault simulation
replays every sequence from scratch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from repro.logic.three_valued import Trit, trit_from_char, trit_to_char

Vector = Tuple[Trit, ...]
TestSequence = Tuple[Vector, ...]


@dataclass(frozen=True)
class TestSet:
    """An immutable set of test sequences for a circuit."""

    __test__ = False  # not a pytest test class, despite the name

    circuit_name: str
    num_inputs: int
    sequences: Tuple[TestSequence, ...]

    def __post_init__(self) -> None:
        for sequence in self.sequences:
            for vector in sequence:
                if len(vector) != self.num_inputs:
                    raise ValueError(
                        f"vector {vector} has {len(vector)} values, "
                        f"expected {self.num_inputs}"
                    )

    @classmethod
    def from_lists(
        cls, circuit_name: str, num_inputs: int, sequences: Iterable[Iterable[Sequence[Trit]]]
    ) -> "TestSet":
        return cls(
            circuit_name,
            num_inputs,
            tuple(tuple(tuple(v) for v in seq) for seq in sequences),
        )

    @property
    def num_sequences(self) -> int:
        return len(self.sequences)

    @property
    def num_vectors(self) -> int:
        return sum(len(sequence) for sequence in self.sequences)

    def with_prefix(self, prefix: Sequence[Sequence[Trit]]) -> "TestSet":
        """Prefix every sequence with the given vectors (Theorem 4's P + T)."""
        prefix_tuple = tuple(tuple(v) for v in prefix)
        for vector in prefix_tuple:
            if len(vector) != self.num_inputs:
                raise ValueError("prefix vector width mismatch")
        return TestSet(
            self.circuit_name,
            self.num_inputs,
            tuple(prefix_tuple + sequence for sequence in self.sequences),
        )

    def extended(self, other: "TestSet") -> "TestSet":
        """Union (concatenation) of two test sets for the same interface."""
        if other.num_inputs != self.num_inputs:
            raise ValueError("test sets have different input widths")
        return TestSet(
            self.circuit_name, self.num_inputs, self.sequences + other.sequences
        )

    def as_lists(self) -> List[List[Vector]]:
        """Sequences in the plain list form the fault simulators accept."""
        return [list(sequence) for sequence in self.sequences]

    # -- text serialization (one sequence per stanza) ------------------------

    def to_text(self) -> str:
        """Serialize: header line, then one stanza of vectors per sequence."""
        lines = [f"# testset {self.circuit_name} inputs={self.num_inputs}"]
        for index, sequence in enumerate(self.sequences):
            lines.append(f"seq {index}")
            for vector in sequence:
                lines.append("".join(trit_to_char(v) for v in vector))
        return "\n".join(lines) + "\n"

    @classmethod
    def from_text(cls, text: str) -> "TestSet":
        circuit_name = "unknown"
        num_inputs = -1
        sequences: List[List[Vector]] = []
        for raw in text.splitlines():
            line = raw.strip()
            if not line:
                continue
            if line.startswith("#"):
                parts = line[1:].split()
                if parts[:1] == ["testset"] and len(parts) >= 3:
                    circuit_name = parts[1]
                    num_inputs = int(parts[2].split("=", 1)[1])
                continue
            if line.startswith("seq"):
                sequences.append([])
                continue
            if not sequences:
                sequences.append([])
            vector = tuple(trit_from_char(c) for c in line)
            sequences[-1].append(vector)
        if num_inputs < 0:
            num_inputs = len(sequences[0][0]) if sequences and sequences[0] else 0
        return cls(
            circuit_name, num_inputs, tuple(tuple(s) for s in sequences)
        )

    def __str__(self) -> str:
        return (
            f"TestSet({self.circuit_name}: {self.num_sequences} sequences, "
            f"{self.num_vectors} vectors)"
        )


__all__ = ["TestSet", "Vector", "TestSequence"]
