"""Test-set evaluation: fault simulation, responses and coverage accounting."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.circuit.netlist import Circuit
from repro.faults.collapse import collapse_faults
from repro.faults.model import StuckAtFault
from repro.faultsim import FaultSimResult, fault_simulate
from repro.logic.three_valued import Trit, X
from repro.simulation.cache import vector_fast_stepper
from repro.simulation.vector_codegen import rail_pair_trit
from repro.testset.model import TestSet


def evaluate_test_set(
    circuit: Circuit,
    test_set: TestSet,
    faults: Optional[Sequence[StuckAtFault]] = None,
    engine: str = "parallel",
) -> FaultSimResult:
    """Fault-simulate a test set on a circuit.

    Default fault list: collapsed representatives of the full single
    stuck-at universe (the paper's #Faults columns count collapsed faults).
    """
    if faults is None:
        faults = collapse_faults(circuit).representatives
    return fault_simulate(circuit, test_set.as_lists(), faults, engine=engine)


def good_responses(
    circuit: Circuit, test_set: TestSet
) -> List[List[Tuple[Trit, ...]]]:
    """Fault-free output responses of every sequence, one bit-parallel pass.

    Each sequence of the test set occupies one bit position of the
    code-generated clean kernel: all sequences are simulated together in a
    single pattern-parallel sweep (sequences shorter than the longest one
    are padded with X vectors, which cannot influence the other positions).
    Returns, per sequence, the list of per-cycle output trit tuples in
    ``circuit.output_names`` order -- the expected responses a tester would
    compare against.
    """
    sequences = test_set.as_lists()
    if not sequences:
        return []
    stepper = vector_fast_stepper(circuit)
    width = len(sequences)
    mask = (1 << width) - 1
    num_inputs = stepper.compiled.num_inputs
    padding = (X,) * num_inputs
    max_length = max(len(sequence) for sequence in sequences)
    state = stepper.unknown_state()
    step = stepper.step_clean
    responses: List[List[Tuple[Trit, ...]]] = [[] for _ in sequences]
    for cycle in range(max_length):
        packed = stepper.pack_vectors(
            [
                tuple(sequence[cycle]) if cycle < len(sequence) else padding
                for sequence in sequences
            ]
        )
        outputs, state = step(state, packed, mask)
        for position, sequence in enumerate(sequences):
            if cycle < len(sequence):
                responses[position].append(
                    tuple(rail_pair_trit(pair, position) for pair in outputs)
                )
    return responses


@dataclass(frozen=True)
class CoverageComparison:
    """Original-vs-retimed fault simulation (one Table III row)."""

    circuit_name: str
    original_faults: int
    original_undetected: int
    retimed_faults: int
    retimed_undetected: int

    @property
    def original_coverage(self) -> float:
        if not self.original_faults:
            return 100.0
        return 100.0 * (1 - self.original_undetected / self.original_faults)

    @property
    def retimed_coverage(self) -> float:
        if not self.retimed_faults:
            return 100.0
        return 100.0 * (1 - self.retimed_undetected / self.retimed_faults)


def compare_coverage(
    original: Circuit,
    retimed: Circuit,
    original_test_set: TestSet,
    derived_test_set: TestSet,
    engine: str = "parallel",
) -> CoverageComparison:
    """Fault-simulate ``T`` on ``K`` and ``P ∪ T`` on ``K'`` (Table III)."""
    result_original = evaluate_test_set(original, original_test_set, engine=engine)
    result_retimed = evaluate_test_set(retimed, derived_test_set, engine=engine)
    return CoverageComparison(
        circuit_name=original.name,
        original_faults=result_original.num_faults,
        original_undetected=result_original.num_undetected,
        retimed_faults=result_retimed.num_faults,
        retimed_undetected=result_retimed.num_undetected,
    )


__all__ = [
    "evaluate_test_set",
    "good_responses",
    "compare_coverage",
    "CoverageComparison",
]
