"""Test-set evaluation: fault simulation and coverage accounting."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.circuit.netlist import Circuit
from repro.faults.collapse import collapse_faults
from repro.faults.model import StuckAtFault
from repro.faultsim import FaultSimResult, fault_simulate
from repro.testset.model import TestSet


def evaluate_test_set(
    circuit: Circuit,
    test_set: TestSet,
    faults: Optional[Sequence[StuckAtFault]] = None,
    engine: str = "parallel",
) -> FaultSimResult:
    """Fault-simulate a test set on a circuit.

    Default fault list: collapsed representatives of the full single
    stuck-at universe (the paper's #Faults columns count collapsed faults).
    """
    if faults is None:
        faults = collapse_faults(circuit).representatives
    return fault_simulate(circuit, test_set.as_lists(), faults, engine=engine)


@dataclass(frozen=True)
class CoverageComparison:
    """Original-vs-retimed fault simulation (one Table III row)."""

    circuit_name: str
    original_faults: int
    original_undetected: int
    retimed_faults: int
    retimed_undetected: int

    @property
    def original_coverage(self) -> float:
        if not self.original_faults:
            return 100.0
        return 100.0 * (1 - self.original_undetected / self.original_faults)

    @property
    def retimed_coverage(self) -> float:
        if not self.retimed_faults:
            return 100.0
        return 100.0 * (1 - self.retimed_undetected / self.retimed_faults)


def compare_coverage(
    original: Circuit,
    retimed: Circuit,
    original_test_set: TestSet,
    derived_test_set: TestSet,
    engine: str = "parallel",
) -> CoverageComparison:
    """Fault-simulate ``T`` on ``K`` and ``P ∪ T`` on ``K'`` (Table III)."""
    result_original = evaluate_test_set(original, original_test_set, engine=engine)
    result_retimed = evaluate_test_set(retimed, derived_test_set, engine=engine)
    return CoverageComparison(
        circuit_name=original.name,
        original_faults=result_original.num_faults,
        original_undetected=result_original.num_undetected,
        retimed_faults=result_retimed.num_faults,
        retimed_undetected=result_retimed.num_undetected,
    )


__all__ = ["evaluate_test_set", "compare_coverage", "CoverageComparison"]
