"""Test sets: model, the Theorem-4 prefix transformation, and evaluation."""

from repro.testset.compact import CompactionResult, compact_test_set
from repro.testset.evaluate import (
    CoverageComparison,
    compare_coverage,
    evaluate_test_set,
    good_responses,
)
from repro.testset.model import TestSequence, TestSet, Vector
from repro.testset.transform import derive_retimed_test_set, derived_prefix_length

__all__ = [
    "TestSet",
    "TestSequence",
    "Vector",
    "derive_retimed_test_set",
    "compact_test_set",
    "CompactionResult",
    "derived_prefix_length",
    "evaluate_test_set",
    "good_responses",
    "compare_coverage",
    "CoverageComparison",
]
