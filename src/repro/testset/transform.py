"""Theorem 4: deriving test sets for retimed circuits.

Given a test set ``T`` for circuit ``K`` and a retiming producing ``K'``,
the derived test set is ``P ∪ T`` -- every test sequence prefixed with
``|P|`` *arbitrary* input vectors, where ``|P|`` is the maximum number of
forward retiming moves across any node of ``K``.  The derived set detects,
in ``K'``, every fault corresponding to a fault ``T`` detects in ``K``.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.logic.three_valued import Trit, ZERO
from repro.retiming.core import Retiming
from repro.retiming.prefix import arbitrary_prefix, prefix_length_for_tests
from repro.testset.model import TestSet


def derive_retimed_test_set(
    test_set: TestSet,
    retiming: Retiming,
    fill: Trit = ZERO,
    rng: Optional[random.Random] = None,
) -> TestSet:
    """``P ∪ T`` per Theorem 4.

    Args:
        test_set: a test set for the retiming's source circuit.
        retiming: the retiming mapping the source circuit to its retimed
            version (used only for its forward-move count).
        fill: the constant used for the arbitrary prefix vectors.
        rng: optional; draw the prefix vectors at random instead (the
            theorem allows any choice).

    When the retiming contains no forward moves the prefix is empty and the
    original test set is returned unchanged (the paper found this to be the
    case for most of its benchmark circuits).
    """
    length = prefix_length_for_tests(retiming)
    if length == 0:
        return test_set
    prefix = arbitrary_prefix(test_set.num_inputs, length, fill=fill, rng=rng)
    return test_set.with_prefix(prefix)


def derived_prefix_length(retiming: Retiming) -> int:
    """The number of arbitrary vectors Theorem 4 requires."""
    return prefix_length_for_tests(retiming)


__all__ = ["derive_retimed_test_set", "derived_prefix_length"]
