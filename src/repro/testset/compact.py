"""Test-set compaction: drop sequences whose detections are covered.

Classic static compaction for sequential test sets: fault-simulate the
sequences in reverse order of addition against the not-yet-covered fault
list and keep only sequences that detect something new.  (Reverse order
works well because ATPG appends deterministic sequences for hard faults
last; simulating them first lets them absorb the easy faults that early
random sequences were added for.)

Compaction interacts cleanly with the paper's prefix transformation: the
prefix is per-sequence, so compacting first and prefixing after yields the
smallest derived test set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.circuit.netlist import Circuit
from repro.faults.collapse import collapse_faults
from repro.faults.model import StuckAtFault
from repro.faultsim.parallel import parallel_fault_simulate
from repro.testset.model import TestSet


@dataclass(frozen=True)
class CompactionResult:
    """Outcome of compacting one test set."""

    compacted: TestSet
    kept_indices: Tuple[int, ...]  # indices into the original sequence list
    sequences_before: int
    sequences_after: int
    vectors_before: int
    vectors_after: int
    detected: int

    def summary(self) -> str:
        return (
            f"{self.compacted.circuit_name}: {self.sequences_before} -> "
            f"{self.sequences_after} sequences, {self.vectors_before} -> "
            f"{self.vectors_after} vectors ({self.detected} faults kept covered)"
        )


def compact_test_set(
    circuit: Circuit,
    test_set: TestSet,
    faults: Optional[Sequence[StuckAtFault]] = None,
) -> CompactionResult:
    """Reverse-order static compaction preserving the detected-fault set."""
    if faults is None:
        faults = collapse_faults(circuit).representatives
    baseline = parallel_fault_simulate(circuit, test_set.as_lists(), faults)
    remaining = set(baseline.detections)
    kept: List[int] = []
    for index in range(test_set.num_sequences - 1, -1, -1):
        if not remaining:
            break
        sequence = list(test_set.sequences[index])
        result = parallel_fault_simulate(
            circuit, [sequence], sorted(remaining)
        )
        if result.detections:
            kept.append(index)
            remaining -= set(result.detections)
    kept.reverse()
    compacted = TestSet(
        test_set.circuit_name,
        test_set.num_inputs,
        tuple(test_set.sequences[i] for i in kept),
    )
    return CompactionResult(
        compacted=compacted,
        kept_indices=tuple(kept),
        sequences_before=test_set.num_sequences,
        sequences_after=compacted.num_sequences,
        vectors_before=test_set.num_vectors,
        vectors_after=compacted.num_vectors,
        detected=len(baseline.detections),
    )


__all__ = ["compact_test_set", "CompactionResult"]
