"""Fault simulation engines (serial reference + PROOFS-style parallel).

The uniform entry point is :func:`fault_simulate`.
"""

from typing import Optional, Sequence

from repro.circuit.netlist import Circuit
from repro.faults.model import StuckAtFault
from repro.faultsim.parallel import parallel_fault_simulate
from repro.faultsim.result import Detection, FaultSimResult
from repro.faultsim.serial import TestSequence, serial_fault_simulate


def fault_simulate(
    circuit: Circuit,
    sequences: Sequence[TestSequence],
    faults: Optional[Sequence[StuckAtFault]] = None,
    engine: str = "parallel",
    drop: bool = True,
) -> FaultSimResult:
    """Fault-simulate a test set (a list of test sequences).

    Each sequence is applied from the all-unknown state, mirroring the
    paper's no-global-reset setting.  ``engine`` selects ``"parallel"``
    (PROOFS-style, default) or ``"serial"`` (reference).
    """
    if engine == "parallel":
        return parallel_fault_simulate(circuit, sequences, faults, drop=drop)
    if engine == "serial":
        return serial_fault_simulate(circuit, sequences, faults, drop=drop)
    raise ValueError(f"unknown engine {engine!r}")


__all__ = [
    "fault_simulate",
    "serial_fault_simulate",
    "parallel_fault_simulate",
    "FaultSimResult",
    "Detection",
    "TestSequence",
]
