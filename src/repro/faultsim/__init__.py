"""Fault simulation engines (serial reference + PROOFS-style parallel).

The uniform entry point is :func:`fault_simulate`.
"""

from typing import Optional, Sequence

from repro.circuit.netlist import Circuit
from repro.faults.model import StuckAtFault
from repro.faultsim.parallel import (
    DEFAULT_GROUP_SIZE,
    parallel_fault_simulate,
)
from repro.faultsim.result import Detection, FaultSimResult
from repro.faultsim.serial import TestSequence, serial_fault_simulate

ENGINES = ("parallel", "parallel-interpreted", "serial")


def fault_simulate(
    circuit: Circuit,
    sequences: Sequence[TestSequence],
    faults: Optional[Sequence[StuckAtFault]] = None,
    engine: str = "parallel",
    drop: bool = True,
    group_size: int = DEFAULT_GROUP_SIZE,
    backend: str = "auto",
    workers: Optional[int] = None,
) -> FaultSimResult:
    """Fault-simulate a test set (a list of test sequences).

    Each sequence is applied from the all-unknown state, mirroring the
    paper's no-global-reset setting.  ``engine`` selects:

    * ``"parallel"`` -- PROOFS-style on the code-generated bit-parallel
      kernel (default);
    * ``"parallel-interpreted"`` -- PROOFS-style on the interpreted
      ``VectorSimulator`` (reference for the compiled kernel);
    * ``"serial"`` -- one scalar faulty machine per fault (the reference
      engine).

    ``backend`` picks the word implementation for the parallel compiled
    kernel (``"bigint"``, ``"numpy"``, or ``"auto"`` to prefer numpy when
    the optional dependency is installed); the other engines ignore it.

    ``workers`` > 1 shards the fault list of the ``"parallel"`` engine
    across that many worker processes (see
    :func:`repro.faultsim.shard.sharded_fault_simulate`); results are
    bit-identical to the single-process run.
    """
    if engine == "parallel":
        if workers is not None and workers > 1:
            from repro.faultsim.shard import sharded_fault_simulate

            return sharded_fault_simulate(
                circuit,
                sequences,
                faults,
                workers=workers,
                drop=drop,
                group_size=group_size,
                backend=backend,
            )
        return parallel_fault_simulate(
            circuit,
            sequences,
            faults,
            drop=drop,
            group_size=group_size,
            backend=backend,
        )
    if engine == "parallel-interpreted":
        return parallel_fault_simulate(
            circuit,
            sequences,
            faults,
            drop=drop,
            group_size=group_size,
            kernel="interpreted",
        )
    if engine == "serial":
        return serial_fault_simulate(circuit, sequences, faults, drop=drop)
    raise ValueError(f"unknown engine {engine!r} (expected one of {ENGINES})")


__all__ = [
    "fault_simulate",
    "serial_fault_simulate",
    "parallel_fault_simulate",
    "FaultSimResult",
    "Detection",
    "TestSequence",
    "ENGINES",
    "DEFAULT_GROUP_SIZE",
]
