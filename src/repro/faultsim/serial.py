"""Serial three-valued fault simulation (the reference engine).

One scalar faulty-machine simulation per fault, compared cycle by cycle
against the fault-free simulation.  A fault is *detected* when, at some
cycle, some primary output carries a binary value in both machines and the
values differ (the standard hard-detection criterion; a faulty ``X`` against
a binary good value is not counted, matching PROOFS).

Every test sequence starts both machines from the all-unknown state: the
paper's setting of circuits without a global reset, where each test sequence
must synchronize the machine itself.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.circuit.netlist import Circuit
from repro.faults.collapse import collapse_faults
from repro.faults.model import StuckAtFault
from repro.faultsim.result import Detection, FaultSimResult
from repro.logic.three_valued import Trit, X
from repro.simulation.cache import compiled_circuit
from repro.simulation.sequential import SequentialSimulator

TestSequence = Sequence[Sequence[Trit]]


def serial_fault_simulate(
    circuit: Circuit,
    sequences: Sequence[TestSequence],
    faults: Optional[Sequence[StuckAtFault]] = None,
    drop: bool = True,
) -> FaultSimResult:
    """Fault-simulate ``sequences`` serially.

    Args:
        circuit: circuit under test.
        sequences: test sequences; each is applied from the all-X state.
        faults: fault list (default: collapsed representatives of the full
            universe).
        drop: stop simulating a fault once detected.
    """
    if faults is None:
        faults = collapse_faults(circuit).representatives
    compiled = compiled_circuit(circuit)
    good_sim = SequentialSimulator(circuit, compiled=compiled)
    output_names = circuit.output_names
    result = FaultSimResult(circuit.name, "serial", tuple(faults))

    good_traces = [good_sim.run(sequence) for sequence in sequences]

    for fault in faults:
        faulty_sim = SequentialSimulator(circuit, fault=fault, compiled=compiled)
        for seq_index, sequence in enumerate(sequences):
            if fault in result.detections and drop:
                break
            good_outputs = good_traces[seq_index].outputs
            state = faulty_sim.unknown_state()
            for cycle, vector in enumerate(sequence):
                step = faulty_sim.step(state, tuple(vector))
                state = step.next_state
                for good_value, faulty_value in zip(
                    good_outputs[cycle], step.outputs
                ):
                    if good_value != X and faulty_value == X:
                        result.potential.add(fault)
                        break
                detection = _first_difference(
                    good_outputs[cycle], step.outputs, output_names
                )
                if detection is not None:
                    result.detections.setdefault(
                        fault, Detection(seq_index, cycle, detection)
                    )
                    if drop:
                        break
    return result


def _first_difference(
    good: Sequence[Trit], faulty: Sequence[Trit], names: Sequence[str]
) -> Optional[str]:
    for name, good_value, faulty_value in zip(names, good, faulty):
        if good_value != X and faulty_value != X and good_value != faulty_value:
            return name
    return None


__all__ = ["serial_fault_simulate", "TestSequence"]
