"""PROOFS-style parallel fault simulation.

Following Niermann/Cheng/Patel's PROOFS (reference [9] of the paper), faults
are packed into machine words -- bit 0 carries the fault-free machine, every
other bit position an independent faulty machine with its stuck-at injection
applied at its own line -- and the whole group is simulated in one
bit-parallel pass per test sequence.  Detected faults are dropped as soon as
they are found: they are skipped when later groups of the same sequence are
formed and removed from the pending list before the next sequence.

Two kernels implement the group step:

* ``"compiled"`` (default) -- the code-generated
  :class:`~repro.simulation.vector_codegen.VectorFastStepper`: straight-line
  dual-rail integer code with the group's stuck-at masks passed as runtime
  parameters, so one compiled function (cached module-wide, see
  :mod:`repro.simulation.cache`) serves every fault group;
* ``"interpreted"`` -- the original
  :class:`~repro.simulation.vector.VectorSimulator` loop, kept as a
  reference point for the cross-engine tests and the performance harness.

The word width is arbitrary (Python integers).  The default of 1024
positions per group sits at the knee of the width sweep recorded in
``BENCH_faultsim.json`` (see ``benchmarks/perf_faultsim.py``): wider groups
amortize per-cycle costs over more faults with no recompilation, and on the
Table II circuits the gain saturates around 1024 (the collapsed fault lists
fit in one or two groups; beyond that, big-integer word operations stop
being effectively constant-time).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.circuit.netlist import Circuit, LineRef
from repro.faults.collapse import collapse_faults
from repro.faults.model import StuckAtFault
from repro.faultsim.result import Detection, FaultSimResult
from repro.faultsim.serial import TestSequence
from repro.logic.three_valued import ONE, Trit, ZERO
from repro.simulation.backends import resolve_backend
from repro.simulation.cache import compiled_circuit, vector_fast_stepper
from repro.simulation.vector import VectorSimulator
from repro.simulation.vector_codegen import VectorFastStepper

DEFAULT_GROUP_SIZE = 1024

KERNELS = ("compiled", "interpreted")


def parallel_fault_simulate(
    circuit: Circuit,
    sequences: Sequence[TestSequence],
    faults: Optional[Sequence[StuckAtFault]] = None,
    drop: bool = True,
    group_size: int = DEFAULT_GROUP_SIZE,
    kernel: str = "compiled",
    backend: str = "auto",
) -> FaultSimResult:
    """Fault-simulate ``sequences`` with fault-parallel words.

    Semantics are identical to :func:`repro.faultsim.serial.
    serial_fault_simulate` (the test suite cross-checks them); only the
    engine differs.  ``kernel`` selects the compiled bit-parallel stepper
    (default) or the interpreted ``VectorSimulator`` reference loop;
    ``backend`` picks the word implementation for the compiled kernel --
    Python bigints (the reference) or the numpy word-plane lowering (see
    :mod:`repro.simulation.wordplane`), with ``"auto"`` preferring numpy
    when the optional dependency is installed.  Detection results are
    bit-identical across backends (the parity suite enforces it).
    """
    if group_size < 2:
        raise ValueError("group_size must leave room for the fault-free bit")
    if kernel not in KERNELS:
        raise ValueError(f"unknown kernel {kernel!r} (expected one of {KERNELS})")
    resolved = resolve_backend(backend)
    if faults is None:
        faults = collapse_faults(circuit).representatives
    result = FaultSimResult(circuit.name, "parallel", tuple(faults))
    if kernel == "compiled":
        stepper = vector_fast_stepper(circuit)
        _validate_fault_lines(circuit, faults, stepper)
        if resolved == "numpy":
            simulate_group = _make_wordplane_group(stepper, _make_compiled_group(stepper))
        else:
            simulate_group = _make_compiled_group(stepper)
    else:
        compiled = compiled_circuit(circuit)
        simulate_group = _make_interpreted_group(circuit, compiled)

    remaining: List[StuckAtFault] = list(faults)
    output_names = circuit.output_names

    for seq_index, sequence in enumerate(sequences):
        vectors = [tuple(v) for v in sequence]
        if not vectors:
            continue
        pending = remaining if drop else list(faults)
        detected_before = len(result.detections)
        position = 0
        while position < len(pending):
            group: List[StuckAtFault] = []
            while position < len(pending) and len(group) < group_size - 1:
                fault = pending[position]
                position += 1
                # Skip faults another group of this same sequence already
                # detected (with dropping, re-simulating them is pure waste).
                if drop and fault in result.detections:
                    continue
                group.append(fault)
            if group:
                simulate_group(vectors, group, seq_index, output_names, result, drop)
        if drop and len(result.detections) > detected_before:
            # Rebuilding the pending list is O(faults) per sequence; skip it
            # for the (common, late-run) sequences that detected nothing.
            remaining = [f for f in remaining if f not in result.detections]
    return result


def _validate_fault_lines(
    circuit: Circuit,
    faults: Sequence[StuckAtFault],
    stepper: VectorFastStepper,
) -> None:
    """Reject faults on lines that do not exist on their edge."""
    for fault in faults:
        if fault.line not in stepper.line_slot:
            edge = circuit.edge(fault.line.edge_index)
            raise ValueError(f"line {fault.line} does not exist on edge {edge}")


class _GroupScan:
    """Per-group recording state shared across cycles and outputs.

    ``live_mask`` holds the bits of still-undetected faults;
    ``potential_seen`` the bits already added to ``result.potential`` by
    this group, so a fault whose unknown output persists across cycles is
    enumerated (and hashed into the set) only once."""

    __slots__ = ("live_mask", "potential_seen")

    def __init__(self, live_mask: int):
        self.live_mask = live_mask
        self.potential_seen = 0


def _record_group_observations(
    ones: int,
    zeros: int,
    scan: _GroupScan,
    group: Sequence[StuckAtFault],
    seq_index: int,
    cycle: int,
    output_name: str,
    result: FaultSimResult,
    drop: bool,
) -> None:
    """Record detections/potentials for one output word, updating
    ``scan.live_mask`` (bits of still-undetected faults)."""
    live_mask = scan.live_mask
    if ones & 1:
        detecting = zeros & live_mask
    elif zeros & 1:
        detecting = ones & live_mask
    else:
        return
    # Potential detections: good binary, faulty unknown (PROOFS'
    # "potentially detected" class).
    unknown = ~(ones | zeros) & live_mask & ~scan.potential_seen
    scan.potential_seen |= unknown
    while unknown:
        bit = (unknown & -unknown).bit_length() - 1
        unknown &= unknown - 1
        result.potential.add(group[bit - 1])
    while detecting:
        bit = (detecting & -detecting).bit_length() - 1
        detecting &= detecting - 1
        fault = group[bit - 1]
        result.detections.setdefault(
            fault, Detection(seq_index, cycle, output_name)
        )
        if drop:
            live_mask &= ~(1 << bit)
    scan.live_mask = live_mask


def _make_compiled_group(stepper: VectorFastStepper):
    """Group simulation on the code-generated bit-parallel kernel."""

    def simulate_group(
        vectors: Sequence[Tuple[Trit, ...]],
        group: Sequence[StuckAtFault],
        seq_index: int,
        output_names: Sequence[str],
        result: FaultSimResult,
        drop: bool,
    ) -> None:
        width = len(group) + 1
        mask = (1 << width) - 1
        sa1, sa0 = stepper.blank_injection_masks()
        line_slot = stepper.line_slot
        for bit, fault in enumerate(group, start=1):
            slot = line_slot[fault.line]
            if fault.value == ONE:
                sa1[slot] |= 1 << bit
            else:
                sa0[slot] |= 1 << bit
        state = stepper.unknown_state()
        scan = _GroupScan(mask & ~1)  # faulty bits not yet detected
        step = stepper.step_inject
        broadcast = stepper.broadcast_vector
        for cycle, vector in enumerate(vectors):
            outputs, state = step(state, broadcast(vector, width), mask, sa1, sa0)
            for out_pos, (ones, zeros) in enumerate(outputs):
                _record_group_observations(
                    ones,
                    zeros,
                    scan,
                    group,
                    seq_index,
                    cycle,
                    output_names[out_pos],
                    result,
                    drop,
                )
            if drop and not scan.live_mask:
                break

    return simulate_group


# Below this group width the numpy backend hands the group to the bigint
# kernel: the word-plane step is ufunc-dispatch-bound (its cost is nearly
# width-independent up to a few thousand lanes), so narrow late-run groups
# -- after dropping has thinned the fault list -- run faster on bigints.
# Both kernels are bit-identical, so the handoff is invisible in results;
# the threshold sits where the measured crossover lands on the Table II
# circuits (see BENCH_faultsim.json).
WORDPLANE_MIN_WIDTH = 192


def _make_wordplane_group(stepper: VectorFastStepper, narrow_fallback):
    """Group simulation on the numpy word-plane backend.

    Bit-identical to :func:`_make_compiled_group`: the same injection slots
    drive the same dual-rail program, and every live-mask decision goes
    through the same :func:`_record_group_observations` on exact packed
    words.  The numpy side only restructures the *scan*: a cheap vectorized
    prescan per cycle finds the outputs with detecting lanes (usually none
    after dropping) and the exact bigint scan runs only on those, while
    potential detections -- which carry no cycle/output attribution in the
    result model -- are OR-accumulated as a word per group and harvested
    once at the end.
    """
    from repro.simulation.wordplane import int_from_words, words_from_int, wordplane_plan

    plan = wordplane_plan(stepper)
    line_slot = stepper.line_slot
    runners: Dict[int, object] = {}
    # Input planes depend only on (vector, width); groups of one sequence
    # share the vectors list, so pack it once per (sequence, width).
    packed_inputs: Dict[int, Tuple[int, list]] = {}

    def simulate_group(
        vectors: Sequence[Tuple[Trit, ...]],
        group: Sequence[StuckAtFault],
        seq_index: int,
        output_names: Sequence[str],
        result: FaultSimResult,
        drop: bool,
    ) -> None:
        width = len(group) + 1
        if width < WORDPLANE_MIN_WIDTH:
            narrow_fallback(vectors, group, seq_index, output_names, result, drop)
            return
        runner = runners.get(width)
        if runner is None:
            runner = runners[width] = plan.runner(width)
        cached = packed_inputs.get(width)
        if cached is None or cached[0] is not vectors:
            packed = [runner.pack_input_bits(vector) for vector in vectors]
            packed_inputs[width] = (vectors, packed)
        else:
            packed = cached[1]
        runner.set_group_faults(
            [line_slot[fault.line] for fault in group],
            [1 if fault.value == ONE else 0 for fault in group],
        )
        runner.reset_state()
        scan = _GroupScan(((1 << width) - 1) & ~1)
        live_words = words_from_int(scan.live_mask, runner.words)
        potential_acc = words_from_int(0, runner.words)
        for cycle, vector in enumerate(vectors):
            runner.load_input_bits(*packed[cycle])
            runner.step()
            hits = runner.detect_scan(live_words, potential_acc)
            if hits is None:
                continue
            before = scan.live_mask
            for out_pos in hits:
                ones, zeros = runner.output_pair_ints(out_pos)
                _record_group_observations(
                    ones,
                    zeros,
                    scan,
                    group,
                    seq_index,
                    cycle,
                    output_names[out_pos],
                    result,
                    drop,
                )
            if scan.live_mask != before:
                if drop and not scan.live_mask:
                    break
                live_words = words_from_int(scan.live_mask, runner.words)
        # Harvest the accumulated potential-detection lanes (faults whose
        # output went X while the good machine was binary and the fault was
        # still live that cycle; the set is unordered, so once per group).
        unknown = int_from_words(potential_acc)
        while unknown:
            bit = (unknown & -unknown).bit_length() - 1
            unknown &= unknown - 1
            result.potential.add(group[bit - 1])

    return simulate_group


def _make_interpreted_group(circuit: Circuit, compiled):
    """Group simulation on the interpreted ``VectorSimulator`` (reference)."""

    def simulate_group(
        vectors: Sequence[Tuple[Trit, ...]],
        group: Sequence[StuckAtFault],
        seq_index: int,
        output_names: Sequence[str],
        result: FaultSimResult,
        drop: bool,
    ) -> None:
        width = len(group) + 1
        injections: Dict[LineRef, Tuple[int, int]] = {}
        for bit, fault in enumerate(group, start=1):
            sa1, sa0 = injections.get(fault.line, (0, 0))
            if fault.value == ONE:
                sa1 |= 1 << bit
            else:
                sa0 |= 1 << bit
            injections[fault.line] = (sa1, sa0)
        simulator = VectorSimulator(circuit, width, injections, compiled=compiled)
        state = simulator.unknown_state()
        scan = _GroupScan(((1 << width) - 1) & ~1)
        for cycle, vector in enumerate(vectors):
            step = simulator.step(state, simulator.broadcast_vector(vector))
            state = step.next_state
            for out_pos, value in enumerate(step.outputs):
                _record_group_observations(
                    value.ones,
                    value.zeros,
                    scan,
                    group,
                    seq_index,
                    cycle,
                    output_names[out_pos],
                    result,
                    drop,
                )
            if drop and not scan.live_mask:
                break

    return simulate_group


__all__ = ["parallel_fault_simulate", "DEFAULT_GROUP_SIZE", "KERNELS"]
