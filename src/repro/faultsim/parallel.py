"""PROOFS-style parallel fault simulation.

Following Niermann/Cheng/Patel's PROOFS (reference [9] of the paper), faults
are packed into machine words -- bit 0 carries the fault-free machine, every
other bit position an independent faulty machine with its stuck-at injection
applied at its own line -- and the whole group is simulated in one
bit-parallel pass per test sequence.  Detected faults are dropped from
subsequent groups.

The word width is arbitrary (Python integers), defaulting to 64 positions
per group, which keeps the per-gate cost at a handful of integer operations
for 63 faults at a time.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.circuit.netlist import Circuit, LineRef
from repro.faults.collapse import collapse_faults
from repro.faults.model import StuckAtFault
from repro.faultsim.result import Detection, FaultSimResult
from repro.faultsim.serial import TestSequence
from repro.logic.three_valued import ONE, Trit, ZERO
from repro.simulation.compiled import CompiledCircuit
from repro.simulation.vector import VectorSimulator


def parallel_fault_simulate(
    circuit: Circuit,
    sequences: Sequence[TestSequence],
    faults: Optional[Sequence[StuckAtFault]] = None,
    drop: bool = True,
    group_size: int = 64,
) -> FaultSimResult:
    """Fault-simulate ``sequences`` with fault-parallel words.

    Semantics are identical to :func:`repro.faultsim.serial.
    serial_fault_simulate` (the test suite cross-checks them); only the
    engine differs.
    """
    if group_size < 2:
        raise ValueError("group_size must leave room for the fault-free bit")
    if faults is None:
        faults = collapse_faults(circuit).representatives
    compiled = CompiledCircuit(circuit)
    result = FaultSimResult(circuit.name, "parallel", tuple(faults))
    remaining: List[StuckAtFault] = list(faults)
    output_names = circuit.output_names

    for seq_index, sequence in enumerate(sequences):
        vectors = [tuple(v) for v in sequence]
        if not vectors:
            continue
        pending = remaining if drop else list(faults)
        position = 0
        while position < len(pending):
            group = pending[position : position + group_size - 1]
            position += len(group)
            detected_in_group = _simulate_group(
                circuit, compiled, vectors, group, seq_index, output_names, result, drop
            )
            if drop and detected_in_group:
                # pending aliases `remaining`; drop detected faults that sit
                # at or beyond the current scan position is unnecessary --
                # they were just simulated -- but they must not survive to
                # later sequences.
                pass
        if drop:
            remaining = [f for f in remaining if f not in result.detections]
    return result


def _simulate_group(
    circuit: Circuit,
    compiled: CompiledCircuit,
    vectors: Sequence[Tuple[Trit, ...]],
    group: Sequence[StuckAtFault],
    seq_index: int,
    output_names: Sequence[str],
    result: FaultSimResult,
    drop: bool,
) -> bool:
    """Simulate one fault group over one sequence; record detections."""
    width = len(group) + 1
    injections: Dict[LineRef, Tuple[int, int]] = {}
    for bit, fault in enumerate(group, start=1):
        sa1, sa0 = injections.get(fault.line, (0, 0))
        if fault.value == ONE:
            sa1 |= 1 << bit
        else:
            sa0 |= 1 << bit
        injections[fault.line] = (sa1, sa0)
    simulator = VectorSimulator(circuit, width, injections, compiled=compiled)
    state = simulator.unknown_state()
    live_mask = ((1 << width) - 1) & ~1  # faulty bits not yet detected
    found = False
    for cycle, vector in enumerate(vectors):
        packed = simulator.broadcast_vector(vector)
        step = simulator.step(state, packed)
        state = step.next_state
        for out_pos, value in enumerate(step.outputs):
            good = value.get(0)
            if good == ONE:
                detecting = value.zeros & live_mask
            elif good == ZERO:
                detecting = value.ones & live_mask
            else:
                continue
            # Potential detections: good binary, faulty unknown (PROOFS'
            # "potentially detected" class).
            unknown = ~(value.ones | value.zeros) & live_mask
            while unknown:
                bit = (unknown & -unknown).bit_length() - 1
                unknown &= unknown - 1
                result.potential.add(group[bit - 1])
            while detecting:
                bit = (detecting & -detecting).bit_length() - 1
                detecting &= detecting - 1
                fault = group[bit - 1]
                result.detections.setdefault(
                    fault, Detection(seq_index, cycle, output_names[out_pos])
                )
                found = True
                if drop:
                    live_mask &= ~(1 << bit)
        if drop and not live_mask:
            break
    return found


__all__ = ["parallel_fault_simulate"]
