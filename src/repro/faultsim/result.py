"""Result types shared by the fault-simulation engines."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.faults.model import StuckAtFault


@dataclass(frozen=True)
class Detection:
    """Where a fault was first detected."""

    sequence_index: int
    cycle: int
    output_name: str


@dataclass
class FaultSimResult:
    """Outcome of fault-simulating a test set against a fault list.

    ``potential`` collects faults that were never hard-detected but drove
    some primary output to X while the good machine was binary -- the
    PROOFS-style *potentially detected* class (detected on real silicon if
    the unknown happens to resolve the right way).
    """

    circuit_name: str
    engine: str
    faults: Tuple[StuckAtFault, ...]
    detections: Dict[StuckAtFault, Detection] = field(default_factory=dict)
    potential: set = field(default_factory=set)

    @property
    def num_faults(self) -> int:
        return len(self.faults)

    @property
    def num_detected(self) -> int:
        return len(self.detections)

    @property
    def num_undetected(self) -> int:
        return self.num_faults - self.num_detected

    @property
    def undetected(self) -> List[StuckAtFault]:
        return [fault for fault in self.faults if fault not in self.detections]

    @property
    def detected(self) -> List[StuckAtFault]:
        return [fault for fault in self.faults if fault in self.detections]

    @property
    def fault_coverage(self) -> float:
        """Detected / total, as a percentage (paper's %FC)."""
        if not self.faults:
            return 100.0
        return 100.0 * self.num_detected / self.num_faults

    @property
    def num_potentially_detected(self) -> int:
        """Undetected faults with at least one X-vs-binary output event."""
        return len(self.potential - set(self.detections))

    def summary(self) -> str:
        return (
            f"{self.circuit_name}: {self.num_detected}/{self.num_faults} detected "
            f"({self.fault_coverage:.1f}% FC, "
            f"{self.num_potentially_detected} potential, engine={self.engine})"
        )


__all__ = ["Detection", "FaultSimResult"]
