"""Process-parallel fault-shard orchestration of the bit-parallel simulator.

The PROOFS-style engine is lane-parallel *within* one process: every fault
group packs up to ``group_size - 1`` faulty machines into the lanes of one
compiled step.  For wide fault lists there is a second, coarser axis --
the fault groups themselves are independent, because

* a fault's recorded detection depends only on its own lanes (fault-drop
  merely stops simulating a fault after its first detection; it never
  changes which cycle/output that first detection was), and
* the potential-detection class is likewise a per-fault property of the
  fault's own lane against the shared fault-free lane.

So partitioning the fault list into disjoint shards, running the ordinary
:func:`~repro.faultsim.parallel.parallel_fault_simulate` on each shard in
its own process, and unioning the per-shard detection maps reproduces the
single-process result **exactly** -- the merge is a disjoint dict union,
not a reconciliation.  The test suite asserts bit-identical results
against the single-process engine.

The pool plumbing mirrors :mod:`repro.atpg.parallel`: ``fork`` start
method where available (the parent's warm compile cache is inherited
copy-on-write), circuit shipped once per worker via the initializer,
several chunks per worker so an uneven shard does not serialize the pool.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.circuit.netlist import Circuit
from repro.faults.collapse import collapse_faults
from repro.faults.model import StuckAtFault
from repro.faultsim.parallel import DEFAULT_GROUP_SIZE, parallel_fault_simulate
from repro.faultsim.result import Detection, FaultSimResult
from repro.faultsim.serial import TestSequence
from repro.simulation.cache import warm_compile_cache

#: Several shards per worker: keeps the pool busy when fault-drop empties
#: one shard early, while still amortizing the per-shard dispatch.
SHARDS_PER_WORKER = 2


def default_workers() -> int:
    """Pool size when the caller asked for sharding without a count: one
    per core, capped at 4 (the kernel saturates memory bandwidth well
    before wide pools pay off on small circuits)."""
    return max(1, min(4, os.cpu_count() or 1))


def _start_method() -> str:
    """``fork`` where the platform offers it (cheap, and the parent's warm
    compile cache is inherited copy-on-write); ``spawn`` otherwise."""
    return "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"


# Per-process worker state, populated by the pool initializer.
_WORKER_STATE: Dict[str, object] = {}


def _worker_init(
    circuit: Circuit,
    sequences: Sequence[TestSequence],
    drop: bool,
    group_size: int,
    kernel: str,
    backend: str,
) -> None:
    warm_compile_cache(circuit)
    _WORKER_STATE["circuit"] = circuit
    _WORKER_STATE["sequences"] = sequences
    _WORKER_STATE["drop"] = drop
    _WORKER_STATE["group_size"] = group_size
    _WORKER_STATE["kernel"] = kernel
    _WORKER_STATE["backend"] = backend


def _worker_shard(
    shard: Sequence[StuckAtFault],
) -> Tuple[List[Tuple[StuckAtFault, Detection]], Set[StuckAtFault]]:
    result = parallel_fault_simulate(
        _WORKER_STATE["circuit"],
        _WORKER_STATE["sequences"],
        shard,
        drop=_WORKER_STATE["drop"],
        group_size=_WORKER_STATE["group_size"],
        kernel=_WORKER_STATE["kernel"],
        backend=_WORKER_STATE["backend"],
    )
    return list(result.detections.items()), result.potential


def sharded_fault_simulate(
    circuit: Circuit,
    sequences: Sequence[TestSequence],
    faults: Optional[Sequence[StuckAtFault]] = None,
    workers: Optional[int] = None,
    drop: bool = True,
    group_size: int = DEFAULT_GROUP_SIZE,
    kernel: str = "compiled",
    backend: str = "auto",
) -> FaultSimResult:
    """Fault-simulate with the fault list sharded across worker processes.

    Results are bit-identical to a single
    :func:`~repro.faultsim.parallel.parallel_fault_simulate` call over the
    whole list (same ``drop``/``group_size``/``kernel``/``backend``
    semantics per shard, exact disjoint merge).  Worth it only when the
    fault list spans many groups *and* the host has spare cores; a
    one-worker request skips the pool entirely.
    """
    if faults is None:
        faults = collapse_faults(circuit).representatives
    faults = list(faults)
    workers = default_workers() if workers is None else workers
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    # A pool cannot pay for itself on one worker or on fewer faults than
    # would fill a couple of lane groups per process.
    if workers == 1 or len(faults) <= group_size - 1:
        return parallel_fault_simulate(
            circuit,
            sequences,
            faults,
            drop=drop,
            group_size=group_size,
            kernel=kernel,
            backend=backend,
        )
    # Shards are whole numbers of lane groups so sharding never changes
    # the group packing (and therefore the per-step lane widths) relative
    # to the single-process run.
    lanes = group_size - 1
    groups_total = -(-len(faults) // lanes)
    target_shards = min(groups_total, workers * SHARDS_PER_WORKER)
    groups_per_shard = -(-groups_total // target_shards)
    shard_size = groups_per_shard * lanes
    shards = [
        faults[index : index + shard_size]
        for index in range(0, len(faults), shard_size)
    ]
    sequences = [list(sequence) for sequence in sequences]
    context = multiprocessing.get_context(_start_method())
    result = FaultSimResult(circuit.name, "parallel-sharded", tuple(faults))
    with ProcessPoolExecutor(
        max_workers=min(workers, len(shards)),
        mp_context=context,
        initializer=_worker_init,
        initargs=(circuit, sequences, drop, group_size, kernel, backend),
    ) as pool:
        for detections, potential in pool.map(_worker_shard, shards):
            result.detections.update(detections)
            result.potential |= potential
    return result


__all__ = [
    "SHARDS_PER_WORKER",
    "default_workers",
    "sharded_fault_simulate",
]
