"""Command-line interface: ``python -m repro <command> ...``.

Commands:

* ``table1`` — print the Table I machine characteristics;
* ``synth <fsm> <style> <script>`` — synthesize a benchmark circuit and
  print its BENCH netlist (e.g. ``synth s820 jc rugged``);
* ``retime <fsm> <style> <script>`` — synthesize, performance-retime, and
  report the pair's statistics and prefix length;
* ``atpg <fsm> <style> <script> [seconds]`` — run the ATPG engine on a
  benchmark circuit and print the test set (``testset`` text format);
* ``flow <fsm> <style> <script> [seconds]`` — run the Fig. 6
  retime-for-testability flow on the retimed circuit (``--verify`` adds a
  Lemma 2 behavioural check stage, ``--stg-engine`` picks its STG engine);
* ``equiv <fsm> <style> <script>`` — explicit state-space analysis: state
  counts, equivalence classes and the shortest functional synchronizing
  sequence (``--engine bitset|reference|reach|auto`` selects the STG
  engine, ``--initial reset|all`` picks the reach engine's start set,
  ``--retimed`` analyses the retimed circuit, ``--max-length N`` bounds
  the sequence search); ``equiv --help`` prints the per-engine limits
  table; prints artifact-store hit/miss stats;
* ``store stats [--json]`` — one table of per-kind, per-shard and
  per-tenant artifact counts/bytes plus session and lifetime hit/miss/
  eviction counters (``--json`` emits the machine-readable summary);
  ``store gc [max_bytes] [--tenant-max-bytes N]`` / ``store clear`` —
  size-bound (globally and per tenant) or empty the persistent store;
* ``serve`` — run the ATPG job service (``repro.service``): an HTTP/JSON
  API that accepts circuit specs, runs Fig. 6 flows on a worker pool,
  dedups in-flight and completed work against the store, and streams run
  journals as NDJSON.  Connections are keep-alive by default and the job
  table persists across restarts via an index under the store root.
  Options: ``--host``, ``--port``, ``--pool N``, ``--tenant NAME``
  (default namespace), ``--no-store``, ``--queue-high-water N``
  (backpressure: 429 + Retry-After past that queue depth),
  ``--idle-timeout SECONDS`` / ``--max-requests N`` (per-connection
  keep-alive limits), ``--gc-interval SECONDS`` + ``--max-bytes N`` /
  ``--tenant-max-bytes N`` (background store GC loop, also compacts the
  job index).

``atpg`` and ``flow`` memoize their expensive stages against the artifact
store (``~/.cache/repro-store``, override with ``REPRO_STORE_DIR``) and
journal each run under its ``journals/`` directory.  Flags:

* ``--no-store`` — compute everything, touch no cache (``--store`` is the
  default);
* ``--resume`` — restore a surviving mid-run ATPG checkpoint for the same
  circuit, fault list and budget (e.g. after a kill) instead of restarting
  the deterministic phase from scratch;
* ``--workers N`` — run the deterministic ATPG phase on N worker processes;
* ``--kernel dual|scalar`` — select the PODEM resimulation kernel (the
  bit-packed dual-machine kernel is the default; both produce bit-identical
  test sets, so this is a speed knob, not a behaviour knob);
* ``--backend auto|bigint|numpy`` — select the word implementation of the
  bit-parallel kernels (``auto``, the default, uses numpy for wide fault
  groups when installed and bigints otherwise; all backends are
  bit-identical, so this too is purely a speed knob);
* ``--guidance off|scoap|learned|auto`` — SCOAP testability ranking and
  the trained meta-predictor for ATPG fault ordering, pool partitioning
  and backtrace objectives (``off``, the default, is bit-identical to
  the unguided engine; guided modes may emit a *different but equally
  valid* test set faster — see :mod:`repro.atpg.guidance`).
"""

from __future__ import annotations

import json
import sys

from repro.atpg import AtpgBudget
from repro.circuit import write_bench
from repro.core import build_pair, format_table
from repro.core.experiments import TABLE2_CIRCUITS, CircuitSpec
from repro.fsm import table1


def _spec(fsm: str, style: str, script: str) -> CircuitSpec:
    script = {"sd": "delay", "sr": "rugged"}.get(script, script)
    for known in TABLE2_CIRCUITS:
        if (known.fsm, known.style, known.script) == (fsm, style, script):
            return known
    # Not one of the sixteen Table II variants: the paper only names the
    # forward-move counts for those, so anything else silently assuming 0
    # moves would be easy to misread as "this spec exists".  Say so.
    print(
        f"warning: {fsm}.{style}.{script} is not a Table II circuit; "
        "assuming forward_stem_moves=0. Known specs: "
        + ", ".join(sorted(s.name for s in TABLE2_CIRCUITS)),
        file=sys.stderr,
    )
    return CircuitSpec(fsm, style, script, 0)


def _budget(argv, position) -> AtpgBudget:
    seconds = float(argv[position]) if len(argv) > position else 30.0
    return AtpgBudget(total_seconds=seconds)


def _pop_flags(rest):
    """Split ``rest`` into positionals and the shared option set."""
    options = {
        "store": True,
        "resume": False,
        "workers": None,
        "kernel": "dual",
        "backend": "auto",
        "guidance": "off",
        "engine": None,
        "retimed": False,
        "max_length": None,
        "initial": None,
        "verify": False,
        "stg_engine": None,
    }
    positional = []
    index = 0
    while index < len(rest):
        argument = rest[index]
        if argument == "--store":
            options["store"] = True
        elif argument == "--no-store":
            options["store"] = False
        elif argument == "--resume":
            options["resume"] = True
        elif argument == "--retimed":
            options["retimed"] = True
        elif argument == "--workers":
            index += 1
            if index >= len(rest):
                raise ValueError("--workers needs a count")
            options["workers"] = int(rest[index])
        elif argument == "--kernel":
            index += 1
            if index >= len(rest):
                raise ValueError("--kernel needs a name (dual or scalar)")
            options["kernel"] = rest[index]
        elif argument == "--backend":
            index += 1
            if index >= len(rest):
                raise ValueError("--backend needs a name (auto, bigint or numpy)")
            options["backend"] = rest[index]
        elif argument == "--guidance":
            index += 1
            if index >= len(rest) or rest[index] not in (
                "off",
                "scoap",
                "learned",
                "auto",
            ):
                raise ValueError(
                    "--guidance needs a mode (off, scoap, learned or auto)"
                )
            options["guidance"] = rest[index]
        elif argument == "--engine":
            index += 1
            if index >= len(rest):
                raise ValueError(
                    "--engine needs a name (bitset, reference, reach or auto)"
                )
            options["engine"] = rest[index]
        elif argument == "--initial":
            index += 1
            if index >= len(rest):
                raise ValueError("--initial needs a start set (reset or all)")
            options["initial"] = rest[index]
        elif argument == "--verify":
            options["verify"] = True
        elif argument == "--stg-engine":
            index += 1
            if index >= len(rest):
                raise ValueError(
                    "--stg-engine needs a name (bitset, reference, reach or auto)"
                )
            options["stg_engine"] = rest[index]
        elif argument == "--max-length":
            index += 1
            if index >= len(rest):
                raise ValueError("--max-length needs a count")
            options["max_length"] = int(rest[index])
        else:
            positional.append(argument)
        index += 1
    return positional, options


def _open_run(options, label):
    """(store, journal) for one atpg/flow run, honouring ``--no-store``."""
    from repro.store.core import default_store
    from repro.store.journal import RunJournal

    store = default_store() if options["store"] else None
    journal = (
        RunJournal.create(store.journal_dir, label) if store is not None else None
    )
    return store, journal


def _equiv_usage() -> str:
    from repro.equivalence import engine_limits_table

    return (
        "usage: python -m repro equiv <fsm> <style> <script> [options]\n"
        "\n"
        "options:\n"
        "  --engine bitset|reference|reach|auto  STG extraction engine\n"
        "  --initial reset|all      reach engine start set (default reset)\n"
        "  --retimed                analyse the retimed circuit\n"
        "  --max-length N           sync-sequence search bound (default 8)\n"
        "  --backend auto|bigint|numpy  word backend for compiled kernels\n"
        "  --no-store               bypass the artifact store\n"
        "\n"
        "engine limits:\n" + engine_limits_table()
    )


def _equiv_command(spec, options) -> int:
    """Explicit state-space analysis of one benchmark circuit."""
    from repro.equivalence import (
        ReachableSTG,
        StateSpaceTooLarge,
        classify,
        extract_stg,
        find_functional_sync_sequence,
        resolved_engine_name,
    )
    from repro.store.core import default_store

    engine = options["engine"]
    initial = options["initial"]
    if initial is not None:
        if initial not in ("reset", "all"):
            print(f"--initial must be reset or all, got {initial!r}", file=sys.stderr)
            return 2
        if engine != "reach":
            print("--initial requires --engine reach", file=sys.stderr)
            return 2
    store = default_store() if options["store"] else None
    pair = build_pair(spec, store=store)
    circuit = pair.retimed if options["retimed"] else pair.original
    max_length = options["max_length"] if options["max_length"] is not None else 8
    try:
        stg = extract_stg(
            circuit,
            engine=engine,
            use_store=options["store"],
            backend=options["backend"],
            initial_states=initial,
        )
    except StateSpaceTooLarge as error:
        print(f"state space too large: {error}", file=sys.stderr)
        return 1
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2
    classification = classify([stg])
    num_classes = len(set(classification.class_array(0)))
    sequence = find_functional_sync_sequence(
        stg, max_length=max_length, classification=classification
    )
    print(
        f"circuit {circuit.name}: {circuit.num_gates()} gates, "
        f"{circuit.num_registers()} dffs, {len(circuit.input_names)} inputs"
    )
    if isinstance(stg, ReachableSTG):
        print(
            f"engine reach: visited {stg.visited_states} of "
            f"{stg.total_states} states x {len(stg.alphabet)} vectors "
            f"(peak frontier {stg.peak_frontier}, {stg.levels} levels), "
            f"{num_classes} equivalence classes"
        )
    else:
        print(
            f"engine {resolved_engine_name(engine, stg)}: "
            f"{len(stg.states)} states x "
            f"{len(stg.alphabet)} vectors, {num_classes} equivalence classes"
        )
    if sequence is None:
        print(f"functional sync sequence: none found (max length {max_length})")
    elif not sequence:
        print("functional sync sequence: empty (all states already equivalent)")
    else:
        rendered = " ".join("".join(str(bit) for bit in v) for v in sequence)
        print(f"functional sync sequence ({len(sequence)} vectors): {rendered}")
    if store is not None:
        stats = store.stats
        print(
            f"store: {stats.hits} hits, {stats.misses} misses, "
            f"{stats.writes} writes",
            file=sys.stderr,
        )
    return 0


def _human_bytes(count: int) -> str:
    value = float(count)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            return f"{value:.1f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1024
    return f"{int(count)} B"


def _render_stats(summary) -> str:
    """The ``store stats`` table: kinds, shards, tenants, counters."""
    lines = [
        f"store root: {summary['root']}",
        f"schema:     {summary['schema']}",
        f"artifacts:  {summary['artifacts']} ({_human_bytes(summary['bytes'])})",
        "",
    ]
    kind_rows = [
        {"kind": kind, "artifacts": count}
        for kind, count in summary["by_kind"].items()
    ]
    if kind_rows:
        lines.append(format_table(kind_rows, ["kind", "artifacts"]))
        lines.append("")
    for title, table in (("tenant", "by_tenant"), ("shard", "by_shard")):
        rows = [
            {
                title: name,
                "artifacts": cell["artifacts"],
                "bytes": _human_bytes(cell["bytes"]),
            }
            for name, cell in summary[table].items()
        ]
        if rows:
            lines.append(format_table(rows, [title, "artifacts", "bytes"]))
            lines.append("")
    counter_rows = [
        {"counters": scope, **summary[scope]} for scope in ("session", "lifetime")
    ]
    lines.append(
        format_table(
            counter_rows,
            ["counters", "hits", "misses", "writes", "errors", "evictions"],
        )
    )
    return "\n".join(lines)


def _store_command(rest) -> int:
    from repro.store.core import default_store
    from repro.store.journal import journal_pinned_paths

    store = default_store()
    if store is None:
        print("artifact store is disabled (REPRO_STORE_DISABLE)", file=sys.stderr)
        return 1
    action = rest[0] if rest else "stats"
    if action == "stats":
        summary = store.summary()
        if "--json" in rest:
            print(json.dumps(summary, indent=2, sort_keys=True))
        else:
            print(_render_stats(summary))
        return 0
    if action == "gc":
        tenant_max_bytes = None
        arguments = []
        index = 1
        while index < len(rest):
            if rest[index] == "--tenant-max-bytes":
                index += 1
                if index >= len(rest):
                    print("--tenant-max-bytes needs a count", file=sys.stderr)
                    return 2
                tenant_max_bytes = int(rest[index])
            else:
                arguments.append(rest[index])
            index += 1
        max_bytes = int(arguments[0]) if arguments else None
        pinned = journal_pinned_paths(store.journal_dir)
        report = store.gc(
            max_bytes=max_bytes, pinned=pinned, tenant_max_bytes=tenant_max_bytes
        )
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0
    if action == "clear":
        removed = store.clear()
        print(f"removed {removed} artifacts from {store.root}")
        return 0
    print(
        "usage: python -m repro store stats [--json]"
        "|gc [max_bytes] [--tenant-max-bytes N]|clear",
        file=sys.stderr,
    )
    return 2


def _serve_command(rest) -> int:
    host = "127.0.0.1"
    port = 8695
    pool = 2
    use_store = True
    tenant = None
    gc_interval = None
    max_bytes = None
    tenant_max_bytes = None
    queue_high_water = None
    idle_timeout = None
    max_requests = None
    index = 0
    try:
        while index < len(rest):
            argument = rest[index]
            if argument == "--host":
                index += 1
                host = rest[index]
            elif argument == "--port":
                index += 1
                port = int(rest[index])
            elif argument == "--pool":
                index += 1
                pool = int(rest[index])
            elif argument == "--tenant":
                index += 1
                tenant = rest[index]
            elif argument == "--gc-interval":
                index += 1
                gc_interval = float(rest[index])
            elif argument == "--max-bytes":
                index += 1
                max_bytes = int(rest[index])
            elif argument == "--tenant-max-bytes":
                index += 1
                tenant_max_bytes = int(rest[index])
            elif argument == "--queue-high-water":
                index += 1
                queue_high_water = int(rest[index])
            elif argument == "--idle-timeout":
                index += 1
                idle_timeout = float(rest[index])
            elif argument == "--max-requests":
                index += 1
                max_requests = int(rest[index])
            elif argument == "--no-store":
                use_store = False
            elif argument == "--store":
                use_store = True
            else:
                print(f"unknown serve option {argument!r}", file=sys.stderr)
                return 2
            index += 1
    except (IndexError, ValueError):
        print(f"option {rest[index - 1]!r} needs a valid value", file=sys.stderr)
        return 2
    from repro.service import run_server
    from repro.service.server import (
        KEEPALIVE_IDLE_SECONDS,
        MAX_REQUESTS_PER_CONNECTION,
    )

    run_server(
        host,
        port,
        store="default" if use_store else None,
        pool=pool,
        tenant=tenant,
        gc_interval=gc_interval,
        gc_max_bytes=max_bytes,
        tenant_max_bytes=tenant_max_bytes,
        queue_high_water=queue_high_water,
        idle_timeout=(
            KEEPALIVE_IDLE_SECONDS if idle_timeout is None else idle_timeout
        ),
        max_requests=(
            MAX_REQUESTS_PER_CONNECTION if max_requests is None else max_requests
        ),
    )
    return 0


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv:
        print(__doc__)
        return 2
    command, rest = argv[0], argv[1:]

    if command == "table1":
        print(format_table(table1(), ["FSM", "PI", "PO", "States"]))
        return 0

    if command == "store":
        return _store_command(rest)

    if command == "serve":
        return _serve_command(rest)

    if command == "equiv" and ("--help" in rest or "-h" in rest):
        # _pop_flags treats unknown arguments as positionals, so catch the
        # help request before flag parsing swallows it.
        print(_equiv_usage())
        return 0

    if command in ("synth", "retime", "atpg", "flow", "equiv"):
        try:
            rest, options = _pop_flags(rest)
        except ValueError as error:
            print(str(error), file=sys.stderr)
            return 2
        if len(rest) < 3:
            print(f"usage: python -m repro {command} <fsm> <style> <script>")
            return 2
        spec = _spec(rest[0], rest[1], rest[2])

        if command == "synth":
            sys.stdout.write(write_bench(build_pair(spec).original))
            return 0
        if command == "equiv":
            return _equiv_command(spec, options)
        if command == "retime":
            pair = build_pair(spec)
            rows = [
                {
                    "circuit": circuit.name,
                    "gates": circuit.num_gates(),
                    "dffs": circuit.num_registers(),
                    "period": circuit.clock_period(),
                }
                for circuit in (pair.original, pair.retimed)
            ]
            print(format_table(rows, ["circuit", "gates", "dffs", "period"]))
            print(f"prefix |P| = {pair.prefix_length} (Theorem 4)")
            return 0

        from repro.pipeline import FlowPipeline

        if command == "atpg":
            store, journal = _open_run(options, f"atpg-{spec.name}")
            pair = build_pair(spec, store=store)
            pipeline = FlowPipeline(
                store=store,
                journal=journal,
                workers=options["workers"],
                kernel=options["kernel"],
                backend=options["backend"],
                guidance=options["guidance"],
                resume=options["resume"],
            )
            try:
                faults = pipeline.stage_collapse(pair.original)
                result = pipeline.stage_atpg(
                    pair.original, faults, _budget(rest, 3)
                )
            finally:
                if journal is not None:
                    journal.close(ok=True)
            print(result.summary(), file=sys.stderr)
            for stage in pipeline.stages:
                print(
                    f"stage {stage.name}: {stage.cache} {stage.seconds:.2f}s",
                    file=sys.stderr,
                )
            if journal is not None:
                print(f"journal: {journal.path}", file=sys.stderr)
            sys.stdout.write(result.test_set.to_text())
            return 0
        if command == "flow":
            store, journal = _open_run(options, f"flow-{spec.name}")
            pipeline = FlowPipeline(
                store=store,
                journal=journal,
                workers=options["workers"],
                kernel=options["kernel"],
                backend=options["backend"],
                guidance=options["guidance"],
                resume=options["resume"],
                verify=options["verify"],
                stg_engine=options["stg_engine"] or "auto",
            )
            try:
                result = pipeline.run_spec(spec, budget=_budget(rest, 3))
            finally:
                if journal is not None:
                    journal.close(ok=True)
            print(result.flow.summary())
            for stage in result.stages:
                print(
                    f"stage {stage.name}: {stage.cache} {stage.seconds:.2f}s",
                    file=sys.stderr,
                )
            if journal is not None:
                print(f"journal: {journal.path}", file=sys.stderr)
            return 0

    print(f"unknown command {command!r}", file=sys.stderr)
    print(__doc__)
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
