"""Command-line interface: ``python -m repro <command> ...``.

Commands:

* ``table1`` — print the Table I machine characteristics;
* ``synth <fsm> <style> <script>`` — synthesize a benchmark circuit and
  print its BENCH netlist (e.g. ``synth s820 jc rugged``);
* ``retime <fsm> <style> <script>`` — synthesize, performance-retime, and
  report the pair's statistics and prefix length;
* ``atpg <fsm> <style> <script> [seconds]`` — run the ATPG engine on a
  benchmark circuit and print the test set (``testset`` text format);
* ``flow <fsm> <style> <script> [seconds]`` — run the Fig. 6
  retime-for-testability flow on the retimed circuit.
"""

from __future__ import annotations

import sys

from repro.atpg import AtpgBudget, run_atpg
from repro.circuit import write_bench
from repro.core import build_pair, format_table, retime_for_testability_flow
from repro.core.experiments import TABLE2_CIRCUITS, CircuitSpec
from repro.fsm import table1


def _spec(fsm: str, style: str, script: str) -> CircuitSpec:
    script = {"sd": "delay", "sr": "rugged"}.get(script, script)
    forward = next(
        (
            s.forward_stem_moves
            for s in TABLE2_CIRCUITS
            if (s.fsm, s.style, s.script) == (fsm, style, script)
        ),
        0,
    )
    return CircuitSpec(fsm, style, script, forward)


def _budget(argv, position) -> AtpgBudget:
    seconds = float(argv[position]) if len(argv) > position else 30.0
    return AtpgBudget(total_seconds=seconds)


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv:
        print(__doc__)
        return 2
    command, rest = argv[0], argv[1:]

    if command == "table1":
        print(format_table(table1(), ["FSM", "PI", "PO", "States"]))
        return 0

    if command in ("synth", "retime", "atpg", "flow"):
        if len(rest) < 3:
            print(f"usage: python -m repro {command} <fsm> <style> <script>")
            return 2
        spec = _spec(rest[0], rest[1], rest[2])
        pair = build_pair(spec)
        if command == "synth":
            sys.stdout.write(write_bench(pair.original))
            return 0
        if command == "retime":
            rows = [
                {
                    "circuit": circuit.name,
                    "gates": circuit.num_gates(),
                    "dffs": circuit.num_registers(),
                    "period": circuit.clock_period(),
                }
                for circuit in (pair.original, pair.retimed)
            ]
            print(format_table(rows, ["circuit", "gates", "dffs", "period"]))
            print(f"prefix |P| = {pair.prefix_length} (Theorem 4)")
            return 0
        if command == "atpg":
            result = run_atpg(pair.original, budget=_budget(rest, 3))
            print(result.summary(), file=sys.stderr)
            sys.stdout.write(result.test_set.to_text())
            return 0
        if command == "flow":
            flow = retime_for_testability_flow(
                pair.retimed, budget=_budget(rest, 3)
            )
            print(flow.summary())
            return 0

    print(f"unknown command {command!r}", file=sys.stderr)
    print(__doc__)
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
