"""Plain-text table rendering for experiment reports."""

from __future__ import annotations

from typing import Dict, List, Sequence, Union

Cell = Union[str, int, float]


def format_table(rows: Sequence[Dict[str, Cell]], columns: Sequence[str]) -> str:
    """Render rows as an aligned plain-text table (paper-style)."""
    def render(value: Cell) -> str:
        if isinstance(value, float):
            return f"{value:.1f}"
        return str(value)

    widths = {column: len(column) for column in columns}
    rendered_rows: List[Dict[str, str]] = []
    for row in rows:
        rendered = {column: render(row.get(column, "")) for column in columns}
        rendered_rows.append(rendered)
        for column in columns:
            widths[column] = max(widths[column], len(rendered[column]))
    lines = [
        "  ".join(column.ljust(widths[column]) for column in columns),
        "  ".join("-" * widths[column] for column in columns),
    ]
    for rendered in rendered_rows:
        lines.append(
            "  ".join(rendered[column].rjust(widths[column]) for column in columns)
        )
    return "\n".join(lines)


__all__ = ["format_table"]
