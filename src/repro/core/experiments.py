"""Drivers for the paper's experiments (Tables I-III, Fig. 6).

This module owns the experiment configuration shared by the benchmark
harness and the examples: the sixteen Table II circuit variants, the
retiming recipe producing each ``.re`` circuit, and the row computations
for each table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.atpg.budget import AtpgBudget
from repro.atpg.engine import AtpgResult, run_atpg
from repro.circuit.netlist import Circuit
from repro.faults.collapse import collapse_faults
from repro.faultsim import fault_simulate
from repro.fsm.mcnc import synthesize_benchmark
from repro.retiming.core import Retiming
from repro.retiming.performance import performance_retiming
from repro.testset.model import TestSet
from repro.testset.transform import derive_retimed_test_set


@dataclass(frozen=True)
class CircuitSpec:
    """One Table II circuit variant."""

    fsm: str
    style: str  # ji / jo / jc
    script: str  # delay / rugged
    forward_stem_moves: int  # 1 for the three circuits the paper names

    @property
    def name(self) -> str:
        code = "sd" if self.script == "delay" else "sr"
        return f"{self.fsm}.{self.style}.{code}"


# The sixteen circuits of Tables II and III.  The paper reports exactly one
# forward retiming move for pma.jo.sd, s510.jc.sd and scf.jo.sd and none
# for the rest (Section V.C).
TABLE2_CIRCUITS: Tuple[CircuitSpec, ...] = (
    CircuitSpec("dk16", "ji", "delay", 0),
    CircuitSpec("pma", "jo", "delay", 1),
    CircuitSpec("s510", "jc", "delay", 1),
    CircuitSpec("s510", "jc", "rugged", 0),
    CircuitSpec("s510", "ji", "delay", 0),
    CircuitSpec("s510", "ji", "rugged", 0),
    CircuitSpec("s510", "jo", "rugged", 0),
    CircuitSpec("s820", "jc", "delay", 0),
    CircuitSpec("s820", "jc", "rugged", 0),
    CircuitSpec("s820", "ji", "rugged", 0),
    CircuitSpec("s820", "jo", "delay", 0),
    CircuitSpec("s820", "jo", "rugged", 0),
    CircuitSpec("s832", "jc", "rugged", 0),
    CircuitSpec("s832", "jo", "rugged", 0),
    CircuitSpec("scf", "ji", "delay", 0),
    CircuitSpec("scf", "jo", "delay", 1),
)


@dataclass
class CircuitPair:
    """An original circuit and its performance-retimed version."""

    spec: CircuitSpec
    original: Circuit
    retimed: Circuit
    retiming: Retiming  # original -> retimed

    @property
    def prefix_length(self) -> int:
        return self.retiming.max_forward_moves()


_pair_cache: Dict[CircuitSpec, CircuitPair] = {}


def synthesize_original(
    spec: CircuitSpec, store=None, pin=None
) -> Tuple[Circuit, str, Optional[str]]:
    """Synthesize one variant, store-backed.

    Returns ``(circuit, cache, key)`` where ``cache`` is the store
    disposition (``hit`` / ``miss`` / ``off``).  The netlist artifact keeps
    the exact graph, so a store hit reproduces node names and edge
    numbering bit-for-bit -- downstream fault coordinates depend on it.
    ``pin`` (a journal's ``artifact_ref``) is forwarded to the store so
    the record is pinned inside its shard lock, atomically with the
    read or write.
    """
    from repro.store.artifacts import circuit_from_payload, circuit_payload

    key = None
    if store is not None:
        key = store.key("synth", spec.fsm, spec.style, spec.script)
        payload = store.get("netlist", key, pin=pin)
        if payload is not None:
            circuit = circuit_from_payload(payload)
            if circuit is not None:
                return circuit, "hit", key
    circuit = synthesize_benchmark(spec.fsm, spec.style, spec.script).circuit
    if store is not None:
        store.put("netlist", key, circuit_payload(circuit), pin=pin)
        return circuit, "miss", key
    return circuit, "off", key


def retime_pair(
    spec: CircuitSpec, original: Circuit, store=None, pin=None
) -> Tuple[Circuit, Retiming, str, Optional[str]]:
    """The register-rich performance retiming of one variant, store-backed.

    The number of backward redistribution passes is chosen adaptively so
    the retimed flip-flop count lands in the paper's 2-6x growth band.
    Returns ``(retimed, retiming, cache, key)``.
    """
    from repro.circuit.digest import circuit_digest, structural_identity
    from repro.store.artifacts import (
        circuit_from_payload,
        circuit_payload,
        retiming_from_payload,
        retiming_payload,
    )

    key = None
    if store is not None:
        key = store.key(
            "pair",
            circuit_digest(original),
            structural_identity(original),
            spec.forward_stem_moves,
        )
        payload = store.get("pair", key, pin=pin)
        if payload is not None:
            try:
                retimed = circuit_from_payload(payload["circuit"])
                retiming = retiming_from_payload(payload["retiming"], original)
            except (KeyError, TypeError):
                retimed = retiming = None
            if retimed is not None and retiming is not None:
                return retimed, retiming, "hit", key
    target_low = 2 * original.num_registers()
    target_high = 6 * original.num_registers()
    chosen = None
    fallback = None
    for passes in (3, 2, 1):
        result = performance_retiming(
            original,
            backward_passes=passes,
            forward_stem_moves=spec.forward_stem_moves,
        )
        count = result.retimed_circuit.num_registers()
        if target_low <= count <= target_high:
            chosen = result
            break
        if fallback is None or abs(count - 4 * original.num_registers()) < abs(
            fallback.retimed_circuit.num_registers() - 4 * original.num_registers()
        ):
            fallback = result
    result = chosen if chosen is not None else fallback
    if store is not None:
        store.put(
            "pair",
            key,
            {
                "circuit": circuit_payload(result.retimed_circuit),
                "retiming": retiming_payload(result.retiming),
            },
            pin=pin,
        )
        return result.retimed_circuit, result.retiming, "miss", key
    return result.retimed_circuit, result.retiming, "off", key


def build_pair(
    spec: CircuitSpec, use_cache: bool = True, store="default"
) -> CircuitPair:
    """Synthesize one variant and its register-rich retimed version.

    Two cache levels: the in-process ``_pair_cache`` (object identity,
    free) and, beneath it, the persistent artifact store -- a fresh
    process re-materializes a previously built pair from netlist and
    retiming records instead of re-running synthesis and the retiming
    sweep.  ``store`` defaults to the process-wide store (pass ``None``
    to force recomputation without persistence).
    """
    if use_cache and spec in _pair_cache:
        return _pair_cache[spec]
    if store == "default":
        from repro.store.core import default_store

        store = default_store()
    original, _cache, _key = synthesize_original(spec, store=store)
    retimed, retiming, _cache, _key = retime_pair(spec, original, store=store)
    pair = CircuitPair(
        spec=spec, original=original, retimed=retimed, retiming=retiming
    )
    if use_cache:
        _pair_cache[spec] = pair
    return pair


def table2_row(
    pair: CircuitPair,
    budget: Optional[AtpgBudget] = None,
    workers: Optional[int] = None,
    engine: Optional[str] = None,
    kernel: str = "dual",
) -> Tuple[Dict[str, object], AtpgResult, AtpgResult]:
    """One Table II row: ATPG on the original and the retimed circuit.

    ``workers``/``engine``/``kernel`` pass straight through to
    :func:`run_atpg`, so a row can be computed on the multiprocess
    deterministic phase or either PODEM kernel; the table's numbers are
    engine- and kernel-independent (same seed, same partition, bit-identical
    search).
    """
    if budget is None:
        budget = AtpgBudget()
    original_result = run_atpg(
        pair.original, budget=budget, workers=workers, engine=engine, kernel=kernel
    )
    retimed_result = run_atpg(
        pair.retimed, budget=budget, workers=workers, engine=engine, kernel=kernel
    )
    effort_original = max(original_result.cpu_seconds, 1e-9)
    row = {
        "Circuit": pair.spec.name,
        "#DFF": pair.original.num_registers(),
        "%FC": original_result.fault_coverage,
        "%FE": original_result.fault_efficiency,
        "CPU": round(original_result.cpu_seconds, 2),
        "#DFF.re": pair.retimed.num_registers(),
        "%FC.re": retimed_result.fault_coverage,
        "%FE.re": retimed_result.fault_efficiency,
        "CPU.re": round(retimed_result.cpu_seconds, 2),
        "CPU Ratio": retimed_result.cpu_seconds / effort_original,
    }
    return row, original_result, retimed_result


def table3_row(
    pair: CircuitPair, test_set: TestSet
) -> Dict[str, object]:
    """One Table III row: fault-simulate T on K and the derived P+T on K'."""
    derived = derive_retimed_test_set(test_set, pair.retiming)
    original_faults = collapse_faults(pair.original).representatives
    retimed_faults = collapse_faults(pair.retimed).representatives
    original_sim = fault_simulate(
        pair.original, test_set.as_lists(), original_faults
    )
    retimed_sim = fault_simulate(pair.retimed, derived.as_lists(), retimed_faults)
    return {
        "Circuit": pair.spec.name,
        "#Faults": original_sim.num_faults,
        "#UnDet": original_sim.num_undetected,
        "#Faults.re": retimed_sim.num_faults,
        "#UnDet.re": retimed_sim.num_undetected,
        "prefix": pair.prefix_length,
    }


__all__ = [
    "CircuitSpec",
    "CircuitPair",
    "TABLE2_CIRCUITS",
    "build_pair",
    "retime_pair",
    "synthesize_original",
    "table2_row",
    "table3_row",
]
