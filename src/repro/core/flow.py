"""The Fig. 6 flow: retime for testability, generate, map the test set back.

The paper's practical payoff: instead of running sequential ATPG on a hard,
performance-retimed circuit, (1) retime it to an easily testable version
(minimum flip-flops), (2) run ATPG there, (3) prefix the resulting test set
with the pre-determined number of arbitrary vectors (Theorem 4) and apply
it to the circuit that will actually be implemented.  The s510.jo.sr case
study in Section V.C shows two orders of magnitude less CPU for the same
fault coverage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.atpg.budget import AtpgBudget
from repro.atpg.engine import AtpgResult
from repro.circuit.netlist import Circuit
from repro.faultsim import FaultSimResult
from repro.retiming.core import Retiming
from repro.testset.model import TestSet


@dataclass
class FlowResult:
    """Outcome of the retime-for-testability ATPG flow."""

    hard_circuit: Circuit
    easy_circuit: Circuit
    easy_retiming: Retiming  # hard -> easy
    prefix_length: int
    atpg_result: AtpgResult  # run on the easy circuit
    derived_test_set: TestSet  # for the hard circuit
    hard_fault_sim: FaultSimResult  # derived set applied to the hard circuit

    @property
    def easy_coverage(self) -> float:
        return self.atpg_result.fault_coverage

    @property
    def hard_coverage(self) -> float:
        return self.hard_fault_sim.fault_coverage

    def summary(self) -> str:
        return (
            f"flow {self.hard_circuit.name}: ATPG on {self.easy_circuit.name} "
            f"achieved {self.easy_coverage:.1f}% FC in "
            f"{self.atpg_result.cpu_seconds:.2f}s; derived test set "
            f"(prefix {self.prefix_length}) achieves {self.hard_coverage:.1f}% "
            f"FC on {self.hard_circuit.name}"
        )


def retime_for_testability_flow(
    hard_circuit: Circuit,
    budget: Optional[AtpgBudget] = None,
    easy_retiming: Optional[Retiming] = None,
    *,
    store=None,
    journal=None,
    workers: Optional[int] = None,
    engine: Optional[str] = None,
    resume: bool = False,
) -> FlowResult:
    """Run the Fig. 6 flow on a hard (performance-retimed) circuit.

    Args:
        hard_circuit: the circuit that will be implemented and tested.
        budget: ATPG budget for the easy circuit.
        easy_retiming: the retiming mapping ``hard_circuit`` to its easy
            version (default: minimum-register retiming, the paper's
            choice for the s510.jo.sr study).
        store / journal / workers / engine / resume: forwarded to the
            stage pipeline (see :class:`repro.pipeline.FlowPipeline`).
            With no store the flow computes everything, as it always did.

    The prefix length comes from the *inverse* retiming (easy -> hard):
    Theorem 4 needs the forward-move count of the transformation from the
    circuit the tests were generated for (easy) to the circuit they will
    be applied to (hard).

    The flow body lives in :class:`repro.pipeline.FlowPipeline`; this
    function is the stable library entry point and simply runs the
    pipeline without persistence by default.
    """
    from repro.pipeline import FlowPipeline

    pipeline = FlowPipeline(
        store=store, journal=journal, workers=workers, engine=engine, resume=resume
    )
    return pipeline.run(hard_circuit, budget=budget, easy_retiming=easy_retiming)


__all__ = ["retime_for_testability_flow", "FlowResult"]
