"""The paper's contribution as a high-level API.

* :mod:`repro.core.preservation` -- prefix lengths, derived test sets and
  empirical verification of Theorem 4;
* :mod:`repro.core.flow` -- the Fig. 6 retime-for-testability ATPG flow;
* :mod:`repro.core.experiments` -- drivers for Tables I-III;
* :mod:`repro.core.report` -- plain-text table rendering.
"""

from repro.core.experiments import (
    TABLE2_CIRCUITS,
    CircuitPair,
    CircuitSpec,
    build_pair,
    table2_row,
    table3_row,
)
from repro.core.flow import FlowResult, retime_for_testability_flow
from repro.core.preservation import (
    PreservationPlan,
    PreservationReport,
    derive_test_set,
    preservation_plan,
    verify_preservation,
)
from repro.core.report import format_table

__all__ = [
    "preservation_plan",
    "PreservationPlan",
    "derive_test_set",
    "verify_preservation",
    "PreservationReport",
    "retime_for_testability_flow",
    "FlowResult",
    "TABLE2_CIRCUITS",
    "CircuitSpec",
    "CircuitPair",
    "build_pair",
    "table2_row",
    "table3_row",
    "format_table",
]
