"""The paper's headline contribution as a library API.

Ties together the retiming engine, the prefix theorems and the fault
machinery:

* :func:`preservation_plan` -- given a retiming, report everything the
  theorems promise: prefix lengths (Theorems 2-4), the time-equivalence
  bound (Lemma 2), and the fault correspondence;
* :func:`derive_test_set` -- Theorem 4's ``P ∪ T`` construction;
* :func:`verify_preservation` -- empirical validation: fault-simulate ``T``
  on ``K`` and ``P ∪ T`` on ``K'`` and check that every detected original
  fault's corresponding retimed faults are detected (up to the
  register-split effect the paper describes in Section V.C).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.circuit.netlist import Circuit
from repro.faults.collapse import collapse_faults
from repro.faults.correspondence import FaultCorrespondence
from repro.faults.model import StuckAtFault
from repro.faultsim import fault_simulate
from repro.retiming.core import Retiming
from repro.retiming.prefix import (
    prefix_length_for_sync,
    prefix_length_for_tests,
)
from repro.testset.model import TestSet
from repro.testset.transform import derive_retimed_test_set


@dataclass(frozen=True)
class PreservationPlan:
    """What the theorems guarantee for one retiming."""

    original_name: str
    retimed_name: str
    prefix_length_tests: int  # Theorems 3-4 (any node)
    prefix_length_sync: int  # Theorem 2 (fanout stems)
    time_equivalence_bound: int  # Lemma 2: N = max(F_stem, B_stem)
    forward_moves: int
    backward_moves: int

    def describe(self) -> str:
        return (
            f"{self.original_name} -> {self.retimed_name}: "
            f"prefix |P| = {self.prefix_length_tests} arbitrary vectors "
            f"(sync-only: {self.prefix_length_sync}); "
            f"K =={self.time_equivalence_bound}t K'"
        )


def preservation_plan(retiming: Retiming, retimed: Optional[Circuit] = None) -> PreservationPlan:
    """Summarize the theorem guarantees for a retiming."""
    retimed_name = retimed.name if retimed is not None else f"{retiming.circuit.name}.re"
    return PreservationPlan(
        original_name=retiming.circuit.name,
        retimed_name=retimed_name,
        prefix_length_tests=prefix_length_for_tests(retiming),
        prefix_length_sync=prefix_length_for_sync(retiming),
        time_equivalence_bound=retiming.time_equivalence_bound(),
        forward_moves=retiming.max_forward_moves(),
        backward_moves=retiming.max_backward_moves(),
    )


def derive_test_set(
    test_set: TestSet,
    retiming: Retiming,
    rng: Optional[random.Random] = None,
) -> TestSet:
    """Theorem 4: the derived test set ``P ∪ T`` for the retimed circuit."""
    return derive_retimed_test_set(test_set, retiming, rng=rng)


@dataclass
class PreservationReport:
    """Result of empirically validating Theorem 4 on a circuit pair."""

    plan: PreservationPlan
    original_faults: int
    original_detected: int
    retimed_faults: int
    retimed_detected: int
    missed: List[StuckAtFault] = field(default_factory=list)
    explained_by_register_split: List[StuckAtFault] = field(default_factory=list)
    time_equivalence_checked: bool = False  # Lemma 2 STG check ran and held
    time_equivalence_engine: str = ""  # STG engine that ran it ("" if skipped)

    @property
    def holds(self) -> bool:
        """True when every miss is explained by the paper's split effect."""
        return not self.missed


def verify_preservation(
    original: Circuit,
    retiming: Retiming,
    test_set: TestSet,
    retimed: Optional[Circuit] = None,
    engine: str = "parallel",
    check_time_equivalence: bool = False,
    stg_engine: Optional[str] = None,
) -> PreservationReport:
    """Empirically check Theorem 4 on a test set.

    For every collapsed fault of the retimed circuit whose corresponding
    original-circuit faults include one detected by ``T``, the derived
    test set must detect it -- except for faults whose *entire*
    corresponding class in the original went undetected (the register
    split/merge effect of Section V.C: those are expected misses and are
    reported separately).

    With ``check_time_equivalence=True`` the report additionally validates
    Lemma 2 on the explicit state space (``K ≡Nt K'`` with the plan's
    bound) via the STG engine selected by ``stg_engine``; machines beyond
    the engine's limits skip the check (``time_equivalence_checked`` stays
    False), a bound violation raises :class:`ValueError`.  With
    ``stg_engine="reach"`` (or ``"auto"`` resolving to it) the bound is
    validated over the *reset-reachable* state sets of the two machines --
    reachability-bounded rather than full-space Lemma 2; the engine that
    actually ran is recorded in ``time_equivalence_engine``.
    """
    retimed_circuit = retimed if retimed is not None else retiming.apply()
    correspondence = FaultCorrespondence(original, retimed_circuit)
    plan = preservation_plan(retiming, retimed_circuit)
    derived = derive_test_set(test_set, retiming)

    original_faults = collapse_faults(original).representatives
    retimed_faults = collapse_faults(retimed_circuit).representatives
    result_original = fault_simulate(
        original, test_set.as_lists(), original_faults, engine=engine
    )
    result_retimed = fault_simulate(
        retimed_circuit, derived.as_lists(), retimed_faults, engine=engine
    )
    detected_original: Set[StuckAtFault] = set(result_original.detections)
    # Extend detection over full equivalence classes (a representative's
    # detection covers its whole class).
    collapsed_original = collapse_faults(original)
    detected_closure: Set[StuckAtFault] = {
        fault
        for fault, rep in collapsed_original.class_of.items()
        if rep in detected_original
    }

    report = PreservationReport(
        plan=plan,
        original_faults=len(original_faults),
        original_detected=len(detected_original),
        retimed_faults=len(retimed_faults),
        retimed_detected=result_retimed.num_detected,
    )
    if check_time_equivalence:
        from repro.equivalence import (
            StateSpaceTooLarge,
            extract_stg,
            resolved_engine_name,
            time_equivalence_bound,
        )

        try:
            stg_original = extract_stg(original, engine=stg_engine)
            stg_retimed = extract_stg(retimed_circuit, engine=stg_engine)
        except StateSpaceTooLarge:
            pass  # machine too large for the chosen engine: skip, don't fail
        else:
            found = time_equivalence_bound(
                stg_original, stg_retimed, max_steps=plan.time_equivalence_bound
            )
            if found is None:
                raise ValueError(
                    f"{original.name} and {retimed_circuit.name} are not "
                    f"{plan.time_equivalence_bound}-time-equivalent: "
                    "Lemma 2 violated"
                )
            report.time_equivalence_checked = True
            report.time_equivalence_engine = resolved_engine_name(
                stg_engine, stg_original, stg_retimed
            )
    for fault in retimed_faults:
        if fault in result_retimed.detections:
            continue
        corresponding = correspondence.originals_of(fault)
        if any(c in detected_closure for c in corresponding):
            report.missed.append(fault)
        else:
            report.explained_by_register_split.append(fault)
    return report


__all__ = [
    "PreservationPlan",
    "preservation_plan",
    "derive_test_set",
    "PreservationReport",
    "verify_preservation",
]
