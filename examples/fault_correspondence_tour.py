"""A tour of the line/fault model and the corresponding-fault relation.

Builds the Fig. 1(a) pair, enumerates lines and faults on both sides of
the retiming, prints the correspondence classes the paper defines in
Section IV-B, and demonstrates the register split/merge effect behind the
Table III discrepancies.

Run:  python examples/fault_correspondence_tour.py
"""

from repro.faults import (
    FaultCorrespondence,
    collapse_faults,
    full_fault_universe,
)
from repro.papercircuits import fig1_gate_pair


def main() -> None:
    k1, k2, retiming = fig1_gate_pair()
    print(f"K1: {k1}")
    print(f"K2: {k2}  (forward move across gate G: Q0/Q1 merge into one DFF)")
    print()

    for circuit in (k1, k2):
        universe = full_fault_universe(circuit)
        collapsed = collapse_faults(circuit)
        print(
            f"{circuit.name}: {circuit.num_lines()} lines, "
            f"{len(universe)} faults, {collapsed.num_collapsed} collapsed"
        )
    print()

    correspondence = FaultCorrespondence(k1, k2)
    print("corresponding faults (K2 -> K1):")
    for fault in full_fault_universe(k2):
        corresponding = correspondence.originals_of(fault)
        names = ", ".join(c.describe(k1) for c in corresponding)
        marker = " (1:1)" if correspondence.is_one_to_one(fault) else ""
        print(f"  {fault.describe(k2):32s} -> {names}{marker}")
    print()

    print(
        "modified edges (the retiming moved registers on these):",
        correspondence.modified_edges(),
    )
    print()
    print(
        "The split/merge effect: the K1 faults on the two segments of each\n"
        "input edge (e.g. I1-Q0 and Q0-G) merge onto a single K2 line, so a\n"
        "test set that misses one of them in K1 misses the merged fault in\n"
        "K2 -- exactly the discrepancy mechanism of Table III."
    )


if __name__ == "__main__":
    main()
