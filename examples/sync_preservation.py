"""Walk through the paper's Figures 2, 3 and 5 step by step.

Reproduces, on executable circuits, every example the paper uses to
motivate its theorems:

* Fig. 2 / Lemma 1: retiming across single-output gates preserves the
  state space exactly (and *creates* equivalent states);
* Fig. 3 / Observation 1, Example 1: a functional synchronizing sequence
  breaks under a forward fanout-stem move, and one arbitrary prefix vector
  repairs it (Theorem 2);
* Fig. 5 / Observation 2, Examples 2 and 4: faulty-machine synchronization
  and structural tests break under a forward gate move and are repaired by
  the prefix (Theorem 3 / Theorem 4).

Run:  python examples/sync_preservation.py
"""

from repro.equivalence import (
    classify,
    extract_stg,
    functional_final_states,
    is_functional_sync_sequence,
    is_structural_sync_sequence,
    space_equivalent,
)
from repro.faultsim import fault_simulate
from repro.logic.three_valued import trits_to_string
from repro.papercircuits import (
    EXAMPLE2_SEQUENCE,
    EXAMPLE4_TEST,
    fig2_pair,
    fig3_pair,
    fig5_pair,
    n1_g1_g2_fault,
    n2_g1_q12_fault,
)
from repro.simulation import SequentialSimulator


def banner(text: str) -> None:
    print()
    print("=" * 72)
    print(text)
    print("=" * 72)


def figure2() -> None:
    banner("Fig. 2 -- Lemma 1: moves across single-output gates")
    c1, c2, retiming = fig2_pair()
    print(f"C1: {c1}")
    print(f"C2: {c2}  (one backward move across gate g2)")
    stg1, stg2 = extract_stg(c1), extract_stg(c2)
    print(f"C1 ==s C2 (space-equivalent): {space_equivalent(stg1, stg2)}")
    classes = classify([stg2]).equivalence_classes(0)
    for states in classes.values():
        if len(states) > 1:
            pretty = ", ".join("".join(map(str, s)) for s in sorted(states))
            print(f"retiming created the equivalent states {{{pretty}}}")


def figure3() -> None:
    banner("Fig. 3 -- Observation 1 / Theorem 2: forward stem move")
    l1, l2, _ = fig3_pair()
    stg1, stg2 = extract_stg(l1), extract_stg(l2)
    sequence = [(1, 1)]
    print(f"<11> functional sync for L1: {is_functional_sync_sequence(stg1, sequence)}")
    print(f"<11> structural sync for L1: {is_structural_sync_sequence(l1, sequence)}")
    print(f"<11> functional sync for L2: {is_functional_sync_sequence(stg2, sequence)}")
    for prefix in [(0, 0), (0, 1), (1, 0), (1, 1)]:
        fixed = [prefix, (1, 1)]
        final = functional_final_states(stg2, fixed)
        print(
            f"  prefix {prefix}: synchronizes L2 = "
            f"{is_functional_sync_sequence(stg2, fixed)}, final states "
            f"{sorted(''.join(map(str, s)) for s in final)}"
        )


def figure5() -> None:
    banner("Fig. 5 -- Observation 2 / Theorems 3-4: forward gate move")
    n1, n2, retiming = fig5_pair()
    fault1 = n1_g1_g2_fault(n1)
    fault2 = n2_g1_q12_fault(n2)
    sim1 = SequentialSimulator(n1, fault=fault1)
    sim2 = SequentialSimulator(n2, fault=fault2)
    print(f"sequence {EXAMPLE2_SEQUENCE} on faulty N1 ends in state "
          f"{trits_to_string(sim1.run(EXAMPLE2_SEQUENCE).final_state)}")
    print(f"same sequence on faulty N2 ends in state "
          f"{trits_to_string(sim2.run(EXAMPLE2_SEQUENCE).final_state)} (not synchronized!)")
    prefixed = [(0, 0, 0)] + EXAMPLE2_SEQUENCE
    print(f"with a one-vector prefix: "
          f"{trits_to_string(sim2.run(prefixed).final_state)} (synchronized)")

    print()
    print(f"Example 4: structural test T = {EXAMPLE4_TEST}")
    detected1 = fault_simulate(n1, [EXAMPLE4_TEST], [fault1]).num_detected
    detected2 = fault_simulate(n2, [EXAMPLE4_TEST], [fault2]).num_detected
    detected2p = fault_simulate(
        n2, [[(0, 0, 0)] + EXAMPLE4_TEST], [fault2]
    ).num_detected
    print(f"  T detects G1-G2 s-a-1 in N1:           {bool(detected1)}")
    print(f"  T detects G1-Q12 s-a-1 in N2:          {bool(detected2)}")
    print(f"  P+T detects G1-Q12 s-a-1 in N2:        {bool(detected2p)}")


def main() -> None:
    figure2()
    figure3()
    figure5()


if __name__ == "__main__":
    main()
