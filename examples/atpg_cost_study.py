"""Mini Table II / Table III study on a selectable circuit set.

Synthesizes paper-style circuits, produces their performance-retimed
versions, runs the ATPG engine on both under identical budgets (Table II),
then derives the retimed circuits' test sets by prefixing (Theorem 4) and
fault-simulates them (Table III).

Run:  python examples/atpg_cost_study.py [circuit ...]
      python examples/atpg_cost_study.py s820.jc.sr dk16.ji.sd

Without arguments a two-circuit demo runs (a few minutes).  Use
``--full`` for all sixteen paper variants (much longer).
"""

import sys

from repro.atpg import AtpgBudget, run_atpg
from repro.core import (
    TABLE2_CIRCUITS,
    build_pair,
    format_table,
    table2_row,
    table3_row,
)

DEFAULT = ("s820.jc.sr", "dk16.ji.sd")

BUDGET = AtpgBudget(
    total_seconds=60.0,
    seconds_per_fault=1.0,
    backtracks_per_fault=100,
    max_frames=8,
    random_sequences=48,
    random_length=96,
    random_stale_limit=12,
)


def pick_specs(argv):
    if "--full" in argv:
        return list(TABLE2_CIRCUITS)
    names = [a for a in argv if not a.startswith("-")] or list(DEFAULT)
    by_name = {spec.name: spec for spec in TABLE2_CIRCUITS}
    unknown = [n for n in names if n not in by_name]
    if unknown:
        raise SystemExit(
            f"unknown circuit(s) {unknown}; pick from {sorted(by_name)}"
        )
    return [by_name[n] for n in names]


def main() -> None:
    specs = pick_specs(sys.argv[1:])
    table2 = []
    table3 = []
    for spec in specs:
        print(f"--- {spec.name} ---")
        pair = build_pair(spec)
        print(
            f"  original {pair.original.num_registers()} DFFs, retimed "
            f"{pair.retimed.num_registers()} DFFs, prefix |P| = "
            f"{pair.prefix_length}"
        )
        row2, original_result, _ = table2_row(pair, BUDGET)
        table2.append(row2)
        table3.append(table3_row(pair, original_result.test_set))

    print()
    print("Table II -- test pattern generation results")
    print(
        format_table(
            table2,
            [
                "Circuit", "#DFF", "%FC", "%FE", "CPU",
                "#DFF.re", "%FC.re", "%FE.re", "CPU.re", "CPU Ratio",
            ],
        )
    )
    print()
    print("Table III -- fault simulation of derived test sets")
    print(
        format_table(
            table3,
            ["Circuit", "#Faults", "#UnDet", "#Faults.re", "#UnDet.re", "prefix"],
        )
    )


if __name__ == "__main__":
    main()
