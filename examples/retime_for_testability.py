"""The Fig. 6 flow end to end: the paper's s510.jo.sr case study.

Given a hard (performance-retimed) circuit:

1. retime it for *testability* -- minimum flip-flops;
2. run the sequential ATPG on that easy version;
3. prefix the test set with |P| arbitrary vectors (Theorem 4);
4. fault-simulate the derived set on the hard circuit;
5. compare against running ATPG directly on the hard circuit.

Run:  python examples/retime_for_testability.py
"""

from repro.atpg import AtpgBudget, run_atpg
from repro.core import build_pair, retime_for_testability_flow
from repro.core.experiments import CircuitSpec

BUDGET = AtpgBudget(
    total_seconds=60.0,
    seconds_per_fault=1.0,
    backtracks_per_fault=100,
    max_frames=8,
    random_sequences=48,
    random_length=96,
    random_stale_limit=12,
)


def main() -> None:
    pair = build_pair(CircuitSpec("s510", "jo", "rugged", 0))
    hard = pair.retimed
    print(f"hard circuit (to be implemented): {hard}")

    flow = retime_for_testability_flow(hard, budget=BUDGET)
    print(f"easy circuit (retimed for test):  {flow.easy_circuit}")
    print(f"prefix |P| = {flow.prefix_length} arbitrary vectors")
    print()
    print("ATPG on the easy circuit:")
    print(f"  {flow.atpg_result.summary()}")
    print("derived test set applied to the hard circuit:")
    print(f"  {flow.hard_fault_sim.summary()}")

    print()
    print("for comparison, ATPG directly on the hard circuit:")
    direct = run_atpg(hard, budget=BUDGET)
    print(f"  {direct.summary()}")
    print()
    print(
        f"flow:   {flow.hard_coverage:.1f}% FC on {hard.name} using "
        f"{flow.atpg_result.cpu_seconds:.1f}s of ATPG"
    )
    print(
        f"direct: {direct.fault_coverage:.1f}% FC on {hard.name} using "
        f"{direct.cpu_seconds:.1f}s of ATPG"
    )


if __name__ == "__main__":
    main()
