"""Quickstart: build a circuit, retime it, and carry a test set across.

Demonstrates the library's core loop in a couple dozen lines:

1. describe a small sequential circuit at the signal level;
2. retime it (minimum clock period);
3. compute the prefix the paper's Theorem 4 prescribes;
4. generate a test set for the original with the ATPG engine;
5. derive the retimed circuit's test set and check coverage carries over.

Run:  python examples/quickstart.py
"""

from repro.atpg import AtpgBudget, run_atpg
from repro.circuit import CircuitBuilder
from repro.core import derive_test_set, preservation_plan
from repro.retiming import min_period_retiming
from repro.testset import evaluate_test_set


def build_example_circuit():
    """A small input-registered datapath with a long combinational tail.

    Both inputs of ``match`` are registered, so min-period retiming can
    move those registers *forward* across the gate -- which is exactly the
    situation where the paper's prefix becomes non-trivial (|P| = max
    forward moves).
    """
    builder = CircuitBuilder("quickstart")
    builder.input("start")
    builder.input("mode")
    builder.input("data")
    builder.dff("start_q", "start")
    builder.dff("mode_q", "mode")
    builder.and_("match", "start_q", "mode_q")
    builder.or_("act", "match", "data")
    builder.output("done", "act")
    return builder.build()


def main() -> None:
    circuit = build_example_circuit()
    print(f"original: {circuit}")

    # --- retime for performance -----------------------------------------
    result = min_period_retiming(circuit)
    retimed = result.retimed_circuit
    print(
        f"retimed:  {retimed}  (period {result.period_before} -> "
        f"{result.period_after})"
    )

    # --- what do the theorems promise? -----------------------------------
    plan = preservation_plan(result.retiming, retimed)
    print(plan.describe())

    # --- generate tests for the original ----------------------------------
    atpg = run_atpg(circuit, budget=AtpgBudget(total_seconds=10))
    print(f"ATPG on original: {atpg.summary()}")

    # --- derive the retimed circuit's test set (Theorem 4) ----------------
    derived = derive_test_set(atpg.test_set, result.retiming)
    print(f"derived test set: {derived}")

    original_cov = evaluate_test_set(circuit, atpg.test_set)
    retimed_cov = evaluate_test_set(retimed, derived)
    print(f"coverage on original: {original_cov.fault_coverage:.1f}%")
    print(f"coverage on retimed:  {retimed_cov.fault_coverage:.1f}%")


if __name__ == "__main__":
    main()
