"""Production niceties: compaction and third-party retiming verification.

1. Generate a test set, statically compact it, and show that the compacted
   set still carries across a retiming with the Theorem-4 prefix.
2. Pretend the retimed circuit came from an external tool: reconstruct the
   retiming labels from the two netlists alone, verify legality and
   Lemma 2's behavioural bound, and read off the prefix length.

Run:  python examples/compact_and_verify.py
"""

from repro.atpg import AtpgBudget, run_atpg
from repro.core import derive_test_set
from repro.retiming import performance_retiming, verify_retiming
from repro.testset import compact_test_set, evaluate_test_set

from pathlib import Path
import sys

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from tests.helpers import resettable_counter  # noqa: E402  (reuse the fixture)


def main() -> None:
    circuit = resettable_counter()
    retimed = performance_retiming(circuit, backward_passes=1).retimed_circuit
    print(f"original: {circuit}")
    print(f"retimed:  {retimed}")

    # --- pretend the retimed netlist arrived from another tool ----------
    verification = verify_retiming(circuit, retimed, check_behaviour=True)
    print(
        f"verified: legal retiming, K =={verification.time_equivalence_bound}t K', "
        f"prefix |P| = {verification.prefix_length_tests}"
    )

    # --- generate, compact, derive, evaluate ------------------------------
    atpg = run_atpg(circuit, budget=AtpgBudget(total_seconds=10))
    print(f"ATPG: {atpg.summary()}")
    compaction = compact_test_set(circuit, atpg.test_set)
    print(f"compacted: {compaction.summary()}")

    derived = derive_test_set(compaction.compacted, verification.retiming)
    original_cov = evaluate_test_set(circuit, compaction.compacted)
    retimed_cov = evaluate_test_set(retimed, derived)
    print(f"coverage on original (compacted set): {original_cov.fault_coverage:.1f}%")
    print(f"coverage on retimed (derived set):    {retimed_cov.fault_coverage:.1f}%")

    # Any percentage difference is bookkeeping, not lost detection: the
    # retiming adds lines (more collapsed faults), and faults whose whole
    # corresponding class was undetected in the original stay undetected.
    from repro.core import verify_preservation

    report = verify_preservation(
        circuit, verification.retiming, compaction.compacted, retimed=retimed
    )
    print(
        f"Theorem 4 check: holds={report.holds}; "
        f"{len(report.explained_by_register_split)} undetected retimed faults "
        "explained by the register split/merge effect (paper Section V.C)"
    )


if __name__ == "__main__":
    main()
